// Differential gate for the SIMD dispatch layer (DESIGN.md section 10).
//
// Every primitive in SimdKernels is run at every dispatch level this build
// can execute and compared against the scalar reference table BITWISE
// (0 ULP, NaN compares equal to NaN) across adversarial shapes: lengths
// 0..67 (every tail residue), unaligned spans, denormals, signed zeros,
// NaN/Inf propagation, and large-magnitude cancellation. The end-to-end
// half of the gate asserts dasc_cluster labels are bit-identical across
// levels, thread counts, and an injected-fault run.
//
// Suite names all start with "SimdDifferential": the asan deflake job
// re-runs them via `ctest -R SimdDifferential --repeat until-fail:3`.
#include "linalg/simd_ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/dasc_clusterer.hpp"
#include "data/synthetic.hpp"

namespace dasc::linalg {
namespace {

// ---- level plumbing ----

/// Restores the active dispatch level on scope exit, so a test that forces
/// a level cannot leak it into later tests in the same binary.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : previous_(simd::active_level()) {
    simd::set_level(level);
  }
  ~ScopedSimdLevel() { simd::set_level(previous_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel previous_;
};

std::vector<SimdLevel> supported_levels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (simd::level_supported(SimdLevel::kSse2)) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (simd::level_supported(SimdLevel::kAvx2)) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

// ---- bitwise comparison (0 ULP; NaN == NaN) ----

bool bit_equal(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

::testing::AssertionResult bit_equal_vec(const std::vector<double>& got,
                                         const std::vector<double>& want) {
  if (got.size() != want.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!bit_equal(got[i], want[i])) {
      return ::testing::AssertionFailure()
             << "element " << i << ": got " << got[i] << " (0x" << std::hex
             << std::bit_cast<std::uint64_t>(got[i]) << ") want " << want[i]
             << " (0x" << std::bit_cast<std::uint64_t>(want[i]) << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// ---- adversarial input families ----

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();

struct InputFamily {
  const char* name;
  void (*fill)(std::vector<double>& x, Rng& rng);
};

const InputFamily kFamilies[] = {
    {"uniform",
     [](std::vector<double>& x, Rng& rng) {
       for (double& v : x) v = rng.uniform(-1.0, 1.0);
     }},
    {"denormals",
     [](std::vector<double>& x, Rng&) {
       for (std::size_t i = 0; i < x.size(); ++i) {
         x[i] = (i % 2 == 0 ? 1.0 : -1.0) * kDenorm *
                static_cast<double>(i + 1);
       }
     }},
    {"signed_zeros",
     [](std::vector<double>& x, Rng&) {
       for (std::size_t i = 0; i < x.size(); ++i) {
         x[i] = i % 2 == 0 ? 0.0 : -0.0;
       }
     }},
    {"nan_inf",
     [](std::vector<double>& x, Rng& rng) {
       for (std::size_t i = 0; i < x.size(); ++i) {
         switch (i % 5) {
           case 0: x[i] = kNaN; break;
           case 1: x[i] = kInf; break;
           case 2: x[i] = -kInf; break;
           default: x[i] = rng.uniform(-2.0, 2.0);
         }
       }
     }},
    {"cancellation",
     [](std::vector<double>& x, Rng& rng) {
       // Alternating huge values whose pairwise sums cancel; reduction
       // order changes the result by many ULPs, so bitwise agreement here
       // proves the levels share one order.
       for (std::size_t i = 0; i < x.size(); ++i) {
         const double huge = (i % 2 == 0 ? 1.0 : -1.0) * 1e15;
         x[i] = huge + rng.uniform(-1.0, 1.0);
       }
     }},
    {"mixed_magnitude",
     [](std::vector<double>& x, Rng&) {
       for (std::size_t i = 0; i < x.size(); ++i) {
         x[i] = (i % 3 == 0 ? -1.0 : 1.0) *
                std::ldexp(1.0, static_cast<int>(i % 120) - 60);
       }
     }},
};

constexpr std::size_t kMaxLen = 67;  // covers every 16-lane tail residue

/// Runs `check(x_span, y_span)` for every family x every length 0..kMaxLen,
/// aligned and one-past-aligned (data()+1), with independently generated
/// x/y contents.
template <typename Check>
void for_each_adversarial_pair(const Check& check) {
  for (const InputFamily& family : kFamilies) {
    Rng rng(0x51D0 + static_cast<std::uint64_t>(family.name[0]));
    for (std::size_t n = 0; n <= kMaxLen; ++n) {
      for (int unaligned = 0; unaligned < 2; ++unaligned) {
        std::vector<double> xbuf(n + 1, 0.0);
        std::vector<double> ybuf(n + 1, 0.0);
        std::vector<double> xs(n);
        std::vector<double> ys(n);
        family.fill(xs, rng);
        family.fill(ys, rng);
        const std::size_t off = unaligned == 0 ? 0 : 1;
        std::copy(xs.begin(), xs.end(), xbuf.begin() + off);
        std::copy(ys.begin(), ys.end(), ybuf.begin() + off);
        SCOPED_TRACE(std::string(family.name) + " n=" + std::to_string(n) +
                     (unaligned ? " unaligned" : " aligned"));
        check(std::span<const double>(xbuf.data() + off, n),
              std::span<const double>(ybuf.data() + off, n));
      }
    }
  }
}

// ---- per-primitive differential gates ----

TEST(SimdDifferentialReduce, DotBitIdenticalAcrossLevels) {
  const SimdKernels& ref = simd::kernels(SimdLevel::kScalar);
  for (SimdLevel level : supported_levels()) {
    const SimdKernels& k = simd::kernels(level);
    for_each_adversarial_pair([&](std::span<const double> x,
                                  std::span<const double> y) {
      EXPECT_PRED2(bit_equal, k.dot(x.data(), y.data(), x.size()),
                   ref.dot(x.data(), y.data(), x.size()))
          << simd::level_name(level);
    });
  }
}

TEST(SimdDifferentialReduce, SquaredDistanceBitIdenticalAcrossLevels) {
  const SimdKernels& ref = simd::kernels(SimdLevel::kScalar);
  for (SimdLevel level : supported_levels()) {
    const SimdKernels& k = simd::kernels(level);
    for_each_adversarial_pair([&](std::span<const double> x,
                                  std::span<const double> y) {
      EXPECT_PRED2(bit_equal,
                   k.squared_distance(x.data(), y.data(), x.size()),
                   ref.squared_distance(x.data(), y.data(), x.size()))
          << simd::level_name(level);
    });
  }
}

TEST(SimdDifferentialReduce, ReduceAddBitIdenticalAcrossLevels) {
  const SimdKernels& ref = simd::kernels(SimdLevel::kScalar);
  for (SimdLevel level : supported_levels()) {
    const SimdKernels& k = simd::kernels(level);
    for_each_adversarial_pair(
        [&](std::span<const double> x, std::span<const double>) {
          EXPECT_PRED2(bit_equal, k.reduce_add(x.data(), x.size()),
                       ref.reduce_add(x.data(), x.size()))
              << simd::level_name(level);
        });
  }
}

TEST(SimdDifferentialElementwise, AxpyBitIdenticalAcrossLevels) {
  const SimdKernels& ref = simd::kernels(SimdLevel::kScalar);
  const double alphas[] = {2.5, -0.75, kDenorm, -kInf, kNaN, 0.0};
  for (SimdLevel level : supported_levels()) {
    const SimdKernels& k = simd::kernels(level);
    for (double alpha : alphas) {
      for_each_adversarial_pair([&](std::span<const double> x,
                                    std::span<const double> y) {
        std::vector<double> got(y.begin(), y.end());
        std::vector<double> want(y.begin(), y.end());
        k.axpy(alpha, x.data(), got.data(), x.size());
        ref.axpy(alpha, x.data(), want.data(), x.size());
        EXPECT_TRUE(bit_equal_vec(got, want))
            << simd::level_name(level) << " alpha=" << alpha;
      });
    }
  }
}

TEST(SimdDifferentialElementwise, ScaleBitIdenticalAcrossLevels) {
  const SimdKernels& ref = simd::kernels(SimdLevel::kScalar);
  const double alphas[] = {3.0, -1e-300, kInf, kNaN, -0.0};
  for (SimdLevel level : supported_levels()) {
    const SimdKernels& k = simd::kernels(level);
    for (double alpha : alphas) {
      for_each_adversarial_pair(
          [&](std::span<const double> x, std::span<const double>) {
            std::vector<double> got(x.begin(), x.end());
            std::vector<double> want(x.begin(), x.end());
            k.scale(got.data(), alpha, got.size());
            ref.scale(want.data(), alpha, want.size());
            EXPECT_TRUE(bit_equal_vec(got, want))
                << simd::level_name(level) << " alpha=" << alpha;
          });
    }
  }
}

TEST(SimdDifferentialElementwise, DiagScaleBitIdenticalAcrossLevels) {
  const SimdKernels& ref = simd::kernels(SimdLevel::kScalar);
  const double scales[] = {0.5, -2.0, kDenorm, kInf};
  for (SimdLevel level : supported_levels()) {
    const SimdKernels& k = simd::kernels(level);
    for (double s : scales) {
      for_each_adversarial_pair([&](std::span<const double> y,
                                    std::span<const double> w) {
        std::vector<double> got(y.begin(), y.end());
        std::vector<double> want(y.begin(), y.end());
        k.diag_scale(got.data(), s, w.data(), got.size());
        ref.diag_scale(want.data(), s, w.data(), want.size());
        EXPECT_TRUE(bit_equal_vec(got, want))
            << simd::level_name(level) << " s=" << s;
      });
    }
  }
}

TEST(SimdDifferentialElementwise, RotateRowsBitIdenticalAcrossLevels) {
  const SimdKernels& ref = simd::kernels(SimdLevel::kScalar);
  // Jacobi produces |c| <= 1 with c^2 + s^2 = 1; also stress degenerates.
  const std::pair<double, double> rotations[] = {
      {std::cos(0.3), std::sin(0.3)}, {0.0, 1.0}, {1.0, 0.0}, {kNaN, 0.5}};
  for (SimdLevel level : supported_levels()) {
    const SimdKernels& k = simd::kernels(level);
    for (const auto& [c, s] : rotations) {
      for_each_adversarial_pair([&](std::span<const double> x,
                                    std::span<const double> y) {
        std::vector<double> gx(x.begin(), x.end());
        std::vector<double> gy(y.begin(), y.end());
        std::vector<double> wx(x.begin(), x.end());
        std::vector<double> wy(y.begin(), y.end());
        k.rotate_rows(gx.data(), gy.data(), c, s, gx.size());
        ref.rotate_rows(wx.data(), wy.data(), c, s, wx.size());
        EXPECT_TRUE(bit_equal_vec(gx, wx)) << simd::level_name(level);
        EXPECT_TRUE(bit_equal_vec(gy, wy)) << simd::level_name(level);
      });
    }
  }
}

TEST(SimdDifferentialElementwise, NegDivBitIdenticalAcrossLevels) {
  const SimdKernels& ref = simd::kernels(SimdLevel::kScalar);
  const double denoms[] = {2.0, 1e-300, 1e300, kInf};
  for (SimdLevel level : supported_levels()) {
    const SimdKernels& k = simd::kernels(level);
    for (double denom : denoms) {
      for_each_adversarial_pair(
          [&](std::span<const double> x, std::span<const double>) {
            std::vector<double> got(x.size(), 0.0);
            std::vector<double> want(x.size(), 0.0);
            k.neg_div(x.data(), denom, got.data(), x.size());
            ref.neg_div(x.data(), denom, want.data(), x.size());
            EXPECT_TRUE(bit_equal_vec(got, want))
                << simd::level_name(level) << " denom=" << denom;
          });
    }
  }
}

TEST(SimdDifferentialElementwise, GaussianFromD2BitIdenticalAcrossLevels) {
  // gaussian_from_d2 routes through the *active* table; force each level
  // via the RAII guard and compare against the scalar-level result.
  std::vector<std::vector<double>> reference;
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    for_each_adversarial_pair(
        [&](std::span<const double> d2, std::span<const double>) {
          std::vector<double> out(d2.size(), 0.0);
          simd::gaussian_from_d2(d2, 0.875, out);
          reference.push_back(std::move(out));
        });
  }
  for (SimdLevel level : supported_levels()) {
    ScopedSimdLevel guard(level);
    std::size_t case_index = 0;
    for_each_adversarial_pair(
        [&](std::span<const double> d2, std::span<const double>) {
          std::vector<double> out(d2.size(), 0.0);
          simd::gaussian_from_d2(d2, 0.875, out);
          EXPECT_TRUE(bit_equal_vec(out, reference[case_index++]))
              << simd::level_name(level);
        });
  }
}

TEST(SimdDifferentialElementwise, NegDivMatchesNegatedQuotientExactly) {
  // The Gaussian exponent must round exactly like the pointwise kernel's
  // -(d2 / denom), including the sign of zero.
  for (SimdLevel level : supported_levels()) {
    const SimdKernels& k = simd::kernels(level);
    const double inputs[] = {0.0, -0.0, 1.0, kDenorm, 1e300, kInf, kNaN};
    for (double v : inputs) {
      double out = 42.0;
      k.neg_div(&v, 2.0, &out, 1);
      EXPECT_PRED2(bit_equal, out, -(v / 2.0)) << simd::level_name(level);
    }
  }
}

// ---- dispatch mechanics ----

TEST(SimdDifferentialDispatch, ParseLevelRoundTrips) {
  EXPECT_EQ(simd::parse_level("auto"), SimdLevel::kAuto);
  EXPECT_EQ(simd::parse_level("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(simd::parse_level("sse2"), SimdLevel::kSse2);
  EXPECT_EQ(simd::parse_level("avx2"), SimdLevel::kAvx2);
  EXPECT_FALSE(simd::parse_level("avx512").has_value());
  EXPECT_FALSE(simd::parse_level("").has_value());
  for (SimdLevel level : supported_levels()) {
    EXPECT_EQ(simd::parse_level(simd::level_name(level)), level);
  }
}

TEST(SimdDifferentialDispatch, SetLevelInstallsAndRestores) {
  const SimdLevel before = simd::active_level();
  for (SimdLevel level : supported_levels()) {
    ScopedSimdLevel guard(level);
    EXPECT_EQ(simd::active_level(), level);
    // The wrapper must route to the forced table.
    const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_PRED2(bit_equal, simd::dot(x, x),
                 simd::kernels(level).dot(x.data(), x.data(), x.size()));
  }
  EXPECT_EQ(simd::active_level(), before);
}

TEST(SimdDifferentialDispatch, UnsupportedLevelsClampDown) {
  // kAuto never stays kAuto, and whatever set_level installs must be a
  // level this machine supports.
  ScopedSimdLevel guard(simd::active_level());
  const SimdLevel resolved = simd::set_level(SimdLevel::kAuto);
  EXPECT_NE(resolved, SimdLevel::kAuto);
  EXPECT_TRUE(simd::level_supported(resolved));
  const SimdLevel forced = simd::set_level(SimdLevel::kAvx2);
  EXPECT_TRUE(simd::level_supported(forced));
  EXPECT_EQ(simd::active_level(), forced);
}

TEST(SimdDifferentialDispatch, GaugeValuesAreStable) {
  EXPECT_EQ(simd::level_gauge_value(SimdLevel::kScalar), 0);
  EXPECT_EQ(simd::level_gauge_value(SimdLevel::kSse2), 1);
  EXPECT_EQ(simd::level_gauge_value(SimdLevel::kAvx2), 2);
}

// ---- end-to-end label parity ----

std::vector<int> run_dasc(const data::PointSet& points, SimdLevel level,
                          std::size_t threads, const char* fault_plan,
                          MetricsRegistry* metrics) {
  core::DascParams params;
  params.seed = 97;
  params.threads = threads;
  params.simd_level = level;
  params.metrics = metrics;
  std::optional<FaultInjector> injector;
  if (fault_plan != nullptr) {
    injector.emplace(FaultPlan::parse(fault_plan), metrics);
    params.faults = &*injector;
    params.max_bucket_attempts = 4;
  }
  Rng rng(params.seed);
  return core::dasc_cluster(points, params, rng).labels;
}

TEST(SimdDifferentialEndToEnd, LabelsBitIdenticalAcrossLevelsThreadsFaults) {
  ScopedSimdLevel guard(simd::active_level());
  Rng data_rng(271);
  data::MixtureParams mix;
  mix.n = 400;
  mix.dim = 12;
  mix.k = 5;
  mix.cluster_stddev = 0.05;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);

  const std::vector<int> reference =
      run_dasc(points, SimdLevel::kScalar, 1, nullptr, nullptr);
  ASSERT_EQ(reference.size(), points.size());

  const char* kPlan = "seed=3;alloc.gram_block:nth=2:max=3";
  for (SimdLevel level : supported_levels()) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      for (const char* plan : {static_cast<const char*>(nullptr), kPlan}) {
        SCOPED_TRACE(std::string(simd::level_name(level)) + " threads=" +
                     std::to_string(threads) +
                     (plan ? " faulted" : " clean"));
        MetricsRegistry metrics;
        EXPECT_EQ(run_dasc(points, level, threads, plan, &metrics),
                  reference);
        // The resolved level must be reported in the gauge.
        EXPECT_EQ(metrics.gauge("linalg.simd_level").value(),
                  simd::level_gauge_value(level));
      }
    }
  }
}

}  // namespace
}  // namespace dasc::linalg
