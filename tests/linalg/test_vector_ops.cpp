#include "linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace dasc::linalg {
namespace {

TEST(VectorOps, DotProduct) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOps, DotRejectsMismatchedSizes) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW(dot(std::span<const double>(x), std::span<const double>(y)),
               dasc::InvalidArgument);
}

TEST(VectorOps, Norm2) {
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
}

TEST(VectorOps, SquaredDistance) {
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> y{4.0, 5.0};
  EXPECT_DOUBLE_EQ(squared_distance(x, y), 9.0 + 16.0);
}

TEST(VectorOps, Axpy) {
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, Scale) {
  std::vector<double> x{1.0, -2.0};
  scale(x, -3.0);
  EXPECT_DOUBLE_EQ(x[0], -3.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
}

TEST(VectorOps, NormalizeMakesUnitVector) {
  std::vector<double> x{3.0, 4.0};
  const double original = normalize(x);
  EXPECT_DOUBLE_EQ(original, 5.0);
  EXPECT_NEAR(norm2(x), 1.0, 1e-15);
}

TEST(VectorOps, NormalizeZeroVectorIsNoOp) {
  std::vector<double> x{0.0, 0.0};
  EXPECT_DOUBLE_EQ(normalize(x), 0.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(VectorOps, Copy) {
  const std::vector<double> src{1.0, 2.0, 3.0};
  std::vector<double> dst(3, 0.0);
  copy(src, dst);
  EXPECT_EQ(src, dst);
}

}  // namespace
}  // namespace dasc::linalg
