#include "linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dasc::linalg {
namespace {

TEST(VectorOps, DotProduct) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOps, DotRejectsMismatchedSizes) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW(dot(std::span<const double>(x), std::span<const double>(y)),
               dasc::InvalidArgument);
}

TEST(VectorOps, Norm2) {
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
}

TEST(VectorOps, SquaredDistance) {
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> y{4.0, 5.0};
  EXPECT_DOUBLE_EQ(squared_distance(x, y), 9.0 + 16.0);
}

TEST(VectorOps, Axpy) {
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, Scale) {
  std::vector<double> x{1.0, -2.0};
  scale(x, -3.0);
  EXPECT_DOUBLE_EQ(x[0], -3.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
}

TEST(VectorOps, NormalizeMakesUnitVector) {
  std::vector<double> x{3.0, 4.0};
  const double original = normalize(x);
  EXPECT_DOUBLE_EQ(original, 5.0);
  EXPECT_NEAR(norm2(x), 1.0, 1e-15);
}

TEST(VectorOps, NormalizeZeroVectorIsNoOp) {
  std::vector<double> x{0.0, 0.0};
  EXPECT_DOUBLE_EQ(normalize(x), 0.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(VectorOps, Copy) {
  const std::vector<double> src{1.0, 2.0, 3.0};
  std::vector<double> dst(3, 0.0);
  copy(src, dst);
  EXPECT_EQ(src, dst);
}

// ---- metric-space properties of the scalar reference semantics ----
// These pin down what the SIMD differential suite measures against: the
// facade must behave like a true squared Euclidean distance regardless of
// which dispatch level implements it.

std::vector<double> random_vec(std::size_t n, dasc::Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-10.0, 10.0);
  return v;
}

TEST(VectorOpsProperties, SquaredDistanceToSelfIsZero) {
  dasc::Rng rng(901);
  for (std::size_t n : {0, 1, 3, 17, 64, 129}) {
    const std::vector<double> x = random_vec(n, rng);
    EXPECT_EQ(squared_distance(std::span<const double>(x),
                               std::span<const double>(x)),
              0.0)
        << "n=" << n;
  }
}

TEST(VectorOpsProperties, SquaredDistanceIsSymmetric) {
  dasc::Rng rng(902);
  for (std::size_t n : {1, 5, 32, 67, 200}) {
    const std::vector<double> x = random_vec(n, rng);
    const std::vector<double> y = random_vec(n, rng);
    // Bitwise symmetric: (x-y)^2 == (y-x)^2 term by term, and the
    // canonical reduction order does not depend on operand order.
    EXPECT_EQ(squared_distance(std::span<const double>(x),
                               std::span<const double>(y)),
              squared_distance(std::span<const double>(y),
                               std::span<const double>(x)))
        << "n=" << n;
  }
}

TEST(VectorOpsProperties, SquaredDistanceIsTranslationInvariant) {
  dasc::Rng rng(903);
  for (std::size_t n : {2, 9, 48, 100}) {
    const std::vector<double> x = random_vec(n, rng);
    const std::vector<double> y = random_vec(n, rng);
    const double shift = rng.uniform(-5.0, 5.0);
    std::vector<double> xs = x;
    std::vector<double> ys = y;
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] += shift;
      ys[i] += shift;
    }
    const double base = squared_distance(std::span<const double>(x),
                                         std::span<const double>(y));
    const double shifted = squared_distance(std::span<const double>(xs),
                                            std::span<const double>(ys));
    // Exact invariance is impossible in floating point; require agreement
    // at the conditioning of the inputs.
    EXPECT_NEAR(shifted, base, 1e-9 * std::max(1.0, base)) << "n=" << n;
  }
}

TEST(VectorOpsProperties, CauchySchwarz) {
  dasc::Rng rng(904);
  for (std::size_t n : {1, 4, 21, 77, 150}) {
    const std::vector<double> x = random_vec(n, rng);
    const std::vector<double> y = random_vec(n, rng);
    const double lhs = std::abs(dot(std::span<const double>(x),
                                    std::span<const double>(y)));
    const double rhs = norm2(x) * norm2(y);
    EXPECT_LE(lhs, rhs * (1.0 + 1e-12)) << "n=" << n;
  }
}

TEST(VectorOpsProperties, DotIsCommutative) {
  dasc::Rng rng(905);
  for (std::size_t n : {3, 16, 63, 128}) {
    const std::vector<double> x = random_vec(n, rng);
    const std::vector<double> y = random_vec(n, rng);
    // x[i]*y[i] == y[i]*x[i] bitwise and the lane order is fixed, so the
    // dot is exactly commutative.
    EXPECT_EQ(dot(std::span<const double>(x), std::span<const double>(y)),
              dot(std::span<const double>(y), std::span<const double>(x)))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace dasc::linalg
