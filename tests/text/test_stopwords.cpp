#include "text/stopwords.hpp"

#include <gtest/gtest.h>

namespace dasc::text {
namespace {

TEST(Stopwords, CommonWordsAreStopwords) {
  EXPECT_TRUE(is_stopword("the"));
  EXPECT_TRUE(is_stopword("and"));
  EXPECT_TRUE(is_stopword("is"));
  EXPECT_TRUE(is_stopword("of"));
  EXPECT_TRUE(is_stopword("with"));
}

TEST(Stopwords, ContentWordsAreNot) {
  EXPECT_FALSE(is_stopword("cluster"));
  EXPECT_FALSE(is_stopword("spectral"));
  EXPECT_FALSE(is_stopword("wikipedia"));
  EXPECT_FALSE(is_stopword(""));
}

TEST(Stopwords, ListHasReasonableSize) {
  EXPECT_GT(stopword_count(), 100u);
  EXPECT_LT(stopword_count(), 400u);
}

TEST(Stopwords, MatchingIsCaseSensitiveLowercase) {
  // The pipeline lowercases before filtering; the list is lowercase-only.
  EXPECT_FALSE(is_stopword("The"));
}

}  // namespace
}  // namespace dasc::text
