#include "text/tokenizer.hpp"

#include <gtest/gtest.h>

namespace dasc::text {
namespace {

TEST(StripMarkup, RemovesTagsKeepsText) {
  EXPECT_EQ(strip_markup("<p>hello</p>"), " hello ");
  EXPECT_EQ(strip_markup("no tags"), "no tags");
}

TEST(StripMarkup, TagsActAsWordSeparators) {
  const auto tokens = tokenize(strip_markup("foo<br/>bar"));
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "foo");
  EXPECT_EQ(tokens[1], "bar");
}

TEST(StripMarkup, HandlesNestedAndAttributedTags) {
  const std::string html =
      "<div class=\"x\"><span>inner</span> text</div>";
  const auto tokens = tokenize(strip_markup(html));
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "inner");
  EXPECT_EQ(tokens[1], "text");
}

TEST(Tokenize, LowercasesAndSplitsOnNonAlpha) {
  const auto tokens = tokenize("Hello, World! 123 foo-bar");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "foo");
  EXPECT_EQ(tokens[3], "bar");
}

TEST(Tokenize, EmptyAndPunctuationOnlyInput) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("!!! ... ###").empty());
}

TEST(NormalizeDocument, RemovesStopwordsAndStems) {
  const auto tokens =
      normalize_document("<p>The cats are running over the bridges</p>");
  // "the", "are", "over" are stop words; "cats"->"cat",
  // "running"->"run", "bridges"->"bridg".
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "cat");
  EXPECT_EQ(tokens[1], "run");
  EXPECT_EQ(tokens[2], "bridg");
}

TEST(NormalizeDocument, DropsSingleLetterStems) {
  const auto tokens = normalize_document("a b c word");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "word");
}

}  // namespace
}  // namespace dasc::text
