// Fuzz-style property tests for the Porter stemmer: it must never crash,
// grow words, or oscillate on arbitrary lowercase input.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "text/porter_stemmer.hpp"

namespace dasc::text {
namespace {

std::string random_word(Rng& rng, std::size_t max_len) {
  const std::size_t len = 1 + rng.uniform_index(max_len);
  std::string word;
  word.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    word.push_back(static_cast<char>('a' + rng.uniform_index(26)));
  }
  return word;
}

TEST(PorterFuzz, NeverLengthensAWord) {
  Rng rng(971);
  for (int trial = 0; trial < 5000; ++trial) {
    const std::string word = random_word(rng, 18);
    EXPECT_LE(porter_stem(word).size(), word.size()) << word;
  }
}

TEST(PorterFuzz, StemIsNonEmptyForNonEmptyInput) {
  Rng rng(972);
  for (int trial = 0; trial < 5000; ++trial) {
    const std::string word = random_word(rng, 12);
    EXPECT_FALSE(porter_stem(word).empty()) << word;
  }
}

TEST(PorterFuzz, SecondApplicationIsStable) {
  // Porter is not formally idempotent on every word, but a second pass
  // must terminate, never grow the stem, and a third pass must agree with
  // the second (no oscillation).
  Rng rng(973);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::string word = random_word(rng, 15);
    const std::string once = porter_stem(word);
    const std::string twice = porter_stem(once);
    const std::string thrice = porter_stem(twice);
    EXPECT_LE(twice.size(), once.size()) << word;
    EXPECT_EQ(thrice, porter_stem(thrice)) << word;
  }
}

TEST(PorterFuzz, VowellessAndRepetitiveInputsSurvive) {
  for (const char* word :
       {"bcdfg", "zzzzzzzzzz", "aaaaaaaaaa", "xyxyxyxyxy", "qqq",
        "sssssses", "inginginging", "eeeeed"}) {
    const std::string stem = porter_stem(word);
    EXPECT_FALSE(stem.empty()) << word;
    EXPECT_LE(stem.size(), std::string(word).size());
  }
}

TEST(PorterFuzz, AllSuffixFormsOfAStemTerminate) {
  // Exercise every rule table entry against a fixed stem.
  const char* suffixes[] = {
      "s",     "es",    "sses",   "ies",     "ed",      "ing",   "eed",
      "at",    "bl",    "iz",     "y",       "ational", "tional", "enci",
      "anci",  "izer",  "abli",   "alli",    "entli",   "eli",    "ousli",
      "ization", "ation", "ator", "alism",   "iveness", "fulness",
      "ousness", "aliti", "iviti", "biliti", "icate",   "ative",  "alize",
      "iciti", "ical",  "ful",    "ness",    "al",      "ance",   "ence",
      "er",    "ic",    "able",   "ible",    "ant",     "ement",  "ment",
      "ent",   "ion",   "ou",     "ism",     "ate",     "iti",    "ous",
      "ive",   "ize",   "e",      "ll"};
  for (const char* suffix : suffixes) {
    const std::string word = std::string("terminat") + suffix;
    const std::string stem = porter_stem(word);
    EXPECT_FALSE(stem.empty()) << word;
    EXPECT_LE(stem.size(), word.size()) << word;
  }
}

}  // namespace
}  // namespace dasc::text
