#include "text/porter_stemmer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace dasc::text {
namespace {

TEST(PorterStemmer, ShortWordsUnchanged) {
  EXPECT_EQ(porter_stem("a"), "a");
  EXPECT_EQ(porter_stem("is"), "is");
  EXPECT_EQ(porter_stem("sky"), "sky");
}

TEST(PorterStemmer, Step1aPlurals) {
  EXPECT_EQ(porter_stem("caresses"), "caress");
  EXPECT_EQ(porter_stem("ponies"), "poni");
  EXPECT_EQ(porter_stem("caress"), "caress");
  EXPECT_EQ(porter_stem("cats"), "cat");
}

TEST(PorterStemmer, Step1bEdIng) {
  EXPECT_EQ(porter_stem("feed"), "feed");
  // Step 1b yields "agree"; step 5a then drops the final e (m("agre")=1,
  // not *o) — the canonical Porter output is "agre".
  EXPECT_EQ(porter_stem("agreed"), "agre");
  EXPECT_EQ(porter_stem("plastered"), "plaster");
  EXPECT_EQ(porter_stem("bled"), "bled");
  EXPECT_EQ(porter_stem("motoring"), "motor");
  EXPECT_EQ(porter_stem("sing"), "sing");
}

TEST(PorterStemmer, Step1bCleanup) {
  EXPECT_EQ(porter_stem("conflated"), "conflat");
  EXPECT_EQ(porter_stem("troubled"), "troubl");
  EXPECT_EQ(porter_stem("sized"), "size");
  EXPECT_EQ(porter_stem("hopping"), "hop");
  EXPECT_EQ(porter_stem("tanned"), "tan");
  EXPECT_EQ(porter_stem("falling"), "fall");
  EXPECT_EQ(porter_stem("hissing"), "hiss");
  EXPECT_EQ(porter_stem("fizzed"), "fizz");
  EXPECT_EQ(porter_stem("failing"), "fail");
  EXPECT_EQ(porter_stem("filing"), "file");
}

TEST(PorterStemmer, Step1cYToI) {
  EXPECT_EQ(porter_stem("happy"), "happi");
  EXPECT_EQ(porter_stem("sky"), "sky");  // no vowel in stem
}

TEST(PorterStemmer, Step2DoubleSuffixes) {
  EXPECT_EQ(porter_stem("relational"), "relat");
  EXPECT_EQ(porter_stem("conditional"), "condit");
  EXPECT_EQ(porter_stem("rational"), "ration");
  EXPECT_EQ(porter_stem("valenci"), "valenc");
  EXPECT_EQ(porter_stem("digitizer"), "digit");
  EXPECT_EQ(porter_stem("operator"), "oper");
}

TEST(PorterStemmer, Step3Suffixes) {
  EXPECT_EQ(porter_stem("triplicate"), "triplic");
  EXPECT_EQ(porter_stem("formative"), "form");
  EXPECT_EQ(porter_stem("formalize"), "formal");
  EXPECT_EQ(porter_stem("electrical"), "electr");
  EXPECT_EQ(porter_stem("hopeful"), "hope");
  EXPECT_EQ(porter_stem("goodness"), "good");
}

TEST(PorterStemmer, Step4ResidualSuffixes) {
  EXPECT_EQ(porter_stem("revival"), "reviv");
  EXPECT_EQ(porter_stem("allowance"), "allow");
  EXPECT_EQ(porter_stem("inference"), "infer");
  EXPECT_EQ(porter_stem("airliner"), "airlin");
  EXPECT_EQ(porter_stem("adjustment"), "adjust");
  EXPECT_EQ(porter_stem("adoption"), "adopt");
  EXPECT_EQ(porter_stem("effective"), "effect");
}

TEST(PorterStemmer, Step5FinalE) {
  EXPECT_EQ(porter_stem("probate"), "probat");
  EXPECT_EQ(porter_stem("rate"), "rate");
  EXPECT_EQ(porter_stem("cease"), "ceas");
}

TEST(PorterStemmer, Step5DoubleL) {
  EXPECT_EQ(porter_stem("controll"), "control");
  EXPECT_EQ(porter_stem("roll"), "roll");
}

TEST(PorterStemmer, StemmingIsIdempotentOnCommonWords) {
  const std::vector<std::string> words{
      "running",  "clustering", "documents", "categories", "approximation",
      "similarity", "distributed", "computing", "matrices",  "probability"};
  for (const auto& word : words) {
    const std::string once = porter_stem(word);
    EXPECT_EQ(porter_stem(once), once) << word << " -> " << once;
  }
}

TEST(PorterStemmer, RelatedFormsShareAStem) {
  EXPECT_EQ(porter_stem("connect"), porter_stem("connected"));
  EXPECT_EQ(porter_stem("connect"), porter_stem("connecting"));
  EXPECT_EQ(porter_stem("connect"), porter_stem("connection"));
  EXPECT_EQ(porter_stem("connect"), porter_stem("connections"));
}

}  // namespace
}  // namespace dasc::text
