#include "text/tfidf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dasc::text {
namespace {

std::vector<TokenizedDoc> tiny_corpus() {
  return {
      {"apple", "banana", "apple"},
      {"banana", "cherry"},
      {"apple", "cherry", "cherry", "durian"},
  };
}

TEST(TfIdf, VocabularyAndDocumentFrequencies) {
  const TfIdfIndex index(tiny_corpus());
  EXPECT_EQ(index.num_documents(), 3u);
  EXPECT_EQ(index.vocabulary_size(), 4u);
  EXPECT_EQ(index.document_frequency("apple"), 2u);
  EXPECT_EQ(index.document_frequency("banana"), 2u);
  EXPECT_EQ(index.document_frequency("cherry"), 2u);
  EXPECT_EQ(index.document_frequency("durian"), 1u);
  EXPECT_EQ(index.document_frequency("unknown"), 0u);
}

TEST(TfIdf, IdfValues) {
  const TfIdfIndex index(tiny_corpus());
  EXPECT_NEAR(index.idf("durian"), std::log(3.0), 1e-12);
  EXPECT_NEAR(index.idf("apple"), std::log(1.5), 1e-12);
  EXPECT_THROW(index.idf("unknown"), dasc::InvalidArgument);
}

TEST(TfIdf, TermIdsAreDenseAndStable) {
  const TfIdfIndex index(tiny_corpus());
  EXPECT_GE(index.term_id("apple"), 0);
  EXPECT_LT(index.term_id("apple"),
            static_cast<long long>(index.vocabulary_size()));
  EXPECT_EQ(index.term_id("missing"), -1);
}

TEST(TfIdf, WeighRanksDistinctiveTermsHigher) {
  const TfIdfIndex index(tiny_corpus());
  // Doc 2: "apple cherry cherry durian". durian is rare (df=1) and cherry
  // frequent in-doc; both should outweigh apple (tf=1/4, low idf).
  const auto weights = index.weigh(tiny_corpus()[2]);
  ASSERT_EQ(weights.size(), 3u);
  const auto apple_id = static_cast<std::size_t>(index.term_id("apple"));
  EXPECT_EQ(weights.back().first, apple_id);
}

TEST(TfIdf, WeighIgnoresOutOfVocabularyTerms) {
  const TfIdfIndex index(tiny_corpus());
  const auto weights = index.weigh({"unknown", "words", "apple"});
  ASSERT_EQ(weights.size(), 1u);
  EXPECT_EQ(weights[0].first,
            static_cast<std::size_t>(index.term_id("apple")));
}

TEST(TfIdf, TopTermsBoundedByVocabulary) {
  const TfIdfIndex index(tiny_corpus());
  EXPECT_EQ(index.top_terms(2).size(), 2u);
  EXPECT_EQ(index.top_terms(100).size(), index.vocabulary_size());
  EXPECT_THROW(index.top_terms(0), dasc::InvalidArgument);
}

TEST(TfIdf, FeaturesHaveRequestedDimension) {
  const TfIdfIndex index(tiny_corpus());
  const auto f = index.features(tiny_corpus()[0], 3);
  EXPECT_EQ(f.size(), 3u);
  // The document contains at least one top term, so not all-zero.
  double total = 0.0;
  for (double v : f) total += std::abs(v);
  EXPECT_GT(total, 0.0);
}

TEST(TfIdf, EmptyCorpusRejected) {
  EXPECT_THROW(TfIdfIndex({}), dasc::InvalidArgument);
}

TEST(TfIdf, SimilarDocsGetSimilarFeatures) {
  std::vector<TokenizedDoc> corpus;
  for (int i = 0; i < 10; ++i) {
    corpus.push_back({"alpha", "beta", "alpha"});
    corpus.push_back({"gamma", "delta", "gamma"});
  }
  const TfIdfIndex index(corpus);
  const auto fa = index.features(corpus[0], 4);
  const auto fb = index.features(corpus[2], 4);  // same class
  const auto fc = index.features(corpus[1], 4);  // other class
  double same = 0.0;
  double diff = 0.0;
  for (std::size_t d = 0; d < 4; ++d) {
    same += (fa[d] - fb[d]) * (fa[d] - fb[d]);
    diff += (fa[d] - fc[d]) * (fa[d] - fc[d]);
  }
  EXPECT_LT(same, diff);
}

}  // namespace
}  // namespace dasc::text
