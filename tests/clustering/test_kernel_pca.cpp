#include "clustering/kernel_pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "clustering/kernel.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "linalg/vector_ops.hpp"

namespace dasc::clustering {
namespace {

TEST(DoubleCenter, RowsAndColumnsSumToZero) {
  dasc::Rng rng(131);
  const data::PointSet points = data::make_uniform(30, 4, rng);
  linalg::DenseMatrix gram = gaussian_gram(points, 0.5);
  double_center(gram);
  for (std::size_t i = 0; i < 30; ++i) {
    double row_sum = 0.0;
    double col_sum = 0.0;
    for (std::size_t j = 0; j < 30; ++j) {
      row_sum += gram(i, j);
      col_sum += gram(j, i);
    }
    EXPECT_NEAR(row_sum, 0.0, 1e-9);
    EXPECT_NEAR(col_sum, 0.0, 1e-9);
  }
}

TEST(DoubleCenter, PreservesSymmetry) {
  dasc::Rng rng(132);
  const data::PointSet points = data::make_uniform(20, 3, rng);
  linalg::DenseMatrix gram = gaussian_gram(points, 0.7);
  double_center(gram);
  EXPECT_TRUE(gram.is_symmetric(1e-10));
}

TEST(KernelPca, LinearKernelRecoversPca) {
  // With the linear kernel K = X X^T, KPCA embeddings reproduce ordinary
  // PCA scores: squared distances between embedded points must match
  // (centered) squared distances between the originals when all
  // components are kept.
  dasc::Rng rng(133);
  const data::PointSet points = data::make_uniform(25, 3, rng);
  linalg::DenseMatrix gram(25, 25, 0.0);
  for (std::size_t i = 0; i < 25; ++i) {
    for (std::size_t j = 0; j < 25; ++j) {
      gram(i, j) = linalg::dot(points.point(i), points.point(j));
    }
  }
  const KernelPcaResult result = kernel_pca(gram, 3);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      const double original =
          linalg::squared_distance(points.point(i), points.point(j));
      const double embedded = linalg::squared_distance(
          result.embedding.row(i), result.embedding.row(j));
      EXPECT_NEAR(embedded, original, 1e-8);
    }
  }
}

TEST(KernelPca, EigenvaluesDescendAndAreNonNegative) {
  dasc::Rng rng(134);
  const data::PointSet points = data::make_uniform(40, 5, rng);
  const linalg::DenseMatrix gram = gaussian_gram(points, 0.5);
  const KernelPcaResult result = kernel_pca(gram, 6);
  for (std::size_t c = 1; c < result.eigenvalues.size(); ++c) {
    EXPECT_GE(result.eigenvalues[c - 1], result.eigenvalues[c] - 1e-10);
  }
  for (double v : result.eigenvalues) EXPECT_GE(v, -1e-8);
}

TEST(KernelPca, FirstComponentSeparatesClusters) {
  dasc::Rng rng(135);
  data::MixtureParams mix;
  mix.n = 60;
  mix.dim = 6;
  mix.k = 2;
  mix.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(mix, rng);
  const linalg::DenseMatrix gram = gaussian_gram(points, 0.4);
  const KernelPcaResult result = kernel_pca(gram, 1);

  // Component 1 should split the two generating components by sign (or at
  // least threshold cleanly at 0 after centering).
  int agree = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    const bool positive = result.embedding(i, 0) >= 0.0;
    const bool cluster0 = points.label(i) == 0;
    if (positive == cluster0) ++agree;
  }
  const int separation = std::max(agree, 60 - agree);
  EXPECT_GE(separation, 57);  // near-perfect split
}

TEST(KernelPca, LanczosPathMatchesDenseOnVariances) {
  dasc::Rng rng(136);
  const data::PointSet points = data::make_uniform(150, 4, rng);
  const linalg::DenseMatrix gram = gaussian_gram(points, 0.6);
  // n = 150 > 128 triggers the Lanczos path; compare eigenvalues against a
  // sub-threshold exact run on the same matrix via the dense branch of a
  // padded problem is overkill — instead verify the embedding variance per
  // component equals the eigenvalue (a KPCA identity).
  const KernelPcaResult result = kernel_pca(gram, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    double variance = 0.0;
    for (std::size_t i = 0; i < 150; ++i) {
      variance += result.embedding(i, c) * result.embedding(i, c);
    }
    EXPECT_NEAR(variance, result.eigenvalues[c],
                1e-6 * std::max(1.0, result.eigenvalues[c]));
  }
}

TEST(KernelPca, RejectsBadArguments) {
  linalg::DenseMatrix gram(4, 4, 0.0);
  EXPECT_THROW(kernel_pca(gram, 0), dasc::InvalidArgument);
  EXPECT_THROW(kernel_pca(gram, 5), dasc::InvalidArgument);
  EXPECT_THROW(kernel_pca(linalg::DenseMatrix(2, 3), 1),
               dasc::InvalidArgument);
  EXPECT_THROW(kernel_pca(gram, 1, -1.0), dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::clustering
