#include "clustering/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/synthetic.hpp"

namespace dasc::clustering {
namespace {

TEST(Accuracy, PerfectMatchIsOne) {
  const std::vector<int> labels{0, 1, 2, 0, 1, 2};
  EXPECT_DOUBLE_EQ(clustering_accuracy(labels, labels), 1.0);
}

TEST(Accuracy, PermutedLabelsStillPerfect) {
  const std::vector<int> truth{0, 0, 1, 1, 2, 2};
  const std::vector<int> predicted{2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(clustering_accuracy(predicted, truth), 1.0);
}

TEST(Accuracy, SingleMistakeCounted) {
  const std::vector<int> truth{0, 0, 0, 1, 1, 1};
  const std::vector<int> predicted{0, 0, 1, 1, 1, 1};
  EXPECT_NEAR(clustering_accuracy(predicted, truth), 5.0 / 6.0, 1e-12);
}

TEST(Accuracy, MorePredictedClustersThanTruth) {
  const std::vector<int> truth{0, 0, 0, 0};
  const std::vector<int> predicted{0, 0, 1, 2};
  // Best match keeps the largest cluster: 2 of 4 correct.
  EXPECT_NEAR(clustering_accuracy(predicted, truth), 0.5, 1e-12);
}

TEST(Accuracy, ArbitraryLabelValuesAccepted) {
  const std::vector<int> truth{7, 7, 42, 42};
  const std::vector<int> predicted{100, 100, 3, 3};
  EXPECT_DOUBLE_EQ(clustering_accuracy(predicted, truth), 1.0);
}

TEST(Accuracy, RejectsSizeMismatchAndEmpty) {
  EXPECT_THROW(clustering_accuracy({0}, {0, 1}), dasc::InvalidArgument);
  EXPECT_THROW(clustering_accuracy({}, {}), dasc::InvalidArgument);
}

TEST(ConfusionMatrix, CountsPairs) {
  const std::vector<int> truth{0, 0, 1, 1};
  const std::vector<int> predicted{0, 1, 1, 1};
  const auto table = confusion_matrix(predicted, truth);
  ASSERT_EQ(table.rows(), 2u);
  ASSERT_EQ(table.cols(), 2u);
  // predicted 0: one truth-0. predicted 1: one truth-0, two truth-1.
  EXPECT_DOUBLE_EQ(table(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(table(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(table(1, 1), 2.0);
}

TEST(DaviesBouldin, CompactSeparatedClustersScoreLow) {
  dasc::Rng rng(81);
  data::MixtureParams tight;
  tight.n = 200;
  tight.dim = 4;
  tight.k = 2;
  tight.cluster_stddev = 0.01;
  const data::PointSet good = data::make_gaussian_mixture(tight, rng);
  const double dbi_good = davies_bouldin_index(good, good.labels());

  data::MixtureParams loose = tight;
  loose.cluster_stddev = 0.2;
  const data::PointSet bad = data::make_gaussian_mixture(loose, rng);
  const double dbi_bad = davies_bouldin_index(bad, bad.labels());

  EXPECT_LT(dbi_good, dbi_bad);
  EXPECT_GT(dbi_good, 0.0);
}

TEST(DaviesBouldin, SingleClusterIsZero) {
  dasc::Rng rng(82);
  const data::PointSet points = data::make_uniform(50, 3, rng);
  const std::vector<int> labels(50, 0);
  EXPECT_DOUBLE_EQ(davies_bouldin_index(points, labels), 0.0);
}

TEST(AverageSquaredError, ZeroForPerfectClusters) {
  // Every point sits exactly on its centroid.
  data::PointSet points(4, 1, {1.0, 1.0, 5.0, 5.0});
  const std::vector<int> labels{0, 0, 1, 1};
  EXPECT_NEAR(average_squared_error(points, labels), 0.0, 1e-12);
}

TEST(AverageSquaredError, GrowsWithScatter) {
  dasc::Rng rng(83);
  data::MixtureParams tight;
  tight.n = 200;
  tight.dim = 6;
  tight.k = 4;
  tight.cluster_stddev = 0.01;
  const data::PointSet good = data::make_gaussian_mixture(tight, rng);

  data::MixtureParams loose = tight;
  loose.cluster_stddev = 0.1;
  const data::PointSet bad = data::make_gaussian_mixture(loose, rng);

  EXPECT_LT(average_squared_error(good, good.labels()),
            average_squared_error(bad, bad.labels()));
}

TEST(AverageSquaredError, WorseLabelsScoreHigher) {
  dasc::Rng rng(84);
  data::MixtureParams mix;
  mix.n = 100;
  mix.dim = 4;
  mix.k = 2;
  mix.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(mix, rng);
  std::vector<int> shuffled = points.labels();
  for (std::size_t i = 0; i < shuffled.size() / 2; ++i) {
    shuffled[i] = 1 - shuffled[i];  // corrupt half the labels
  }
  EXPECT_LT(average_squared_error(points, points.labels()),
            average_squared_error(points, shuffled));
}

TEST(Purity, PerfectClustersScoreOne) {
  const std::vector<int> truth{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(clustering_purity(truth, truth), 1.0);
}

TEST(Purity, SplitClustersStayPure) {
  // One truth class split into two predicted clusters: purity stays 1
  // while the one-to-one Hungarian accuracy drops — the property that
  // makes purity the right measure for DASC's per-bucket clusters.
  const std::vector<int> truth{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<int> predicted{0, 0, 2, 2, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(clustering_purity(predicted, truth), 1.0);
  EXPECT_LT(clustering_accuracy(predicted, truth), 1.0);
}

TEST(Purity, MergedClassesArePenalized) {
  const std::vector<int> truth{0, 0, 0, 1, 1, 1};
  const std::vector<int> predicted(6, 0);  // everything in one cluster
  EXPECT_DOUBLE_EQ(clustering_purity(predicted, truth), 0.5);
}

TEST(Purity, AtLeastHungarianAccuracy) {
  // Purity dominates one-to-one accuracy on random labelings.
  dasc::Rng rng(86);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> a(60);
    std::vector<int> b(60);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<int>(rng.uniform_index(5));
      b[i] = static_cast<int>(rng.uniform_index(4));
    }
    EXPECT_GE(clustering_purity(a, b), clustering_accuracy(a, b) - 1e-12);
  }
}

TEST(Purity, SingletonClustersGameTheMetricToOne) {
  // Known caveat (documented): purity is 1 when every point is its own
  // cluster; benchmarks therefore also report cluster counts.
  const std::vector<int> truth{0, 0, 1, 1};
  const std::vector<int> predicted{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(clustering_purity(predicted, truth), 1.0);
}

TEST(Nmi, PerfectAndIndependentExtremes) {
  const std::vector<int> truth{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(normalized_mutual_information(truth, truth), 1.0, 1e-12);

  // Independent labelings over many points: NMI near 0.
  dasc::Rng rng(85);
  std::vector<int> a(2000);
  std::vector<int> b(2000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int>(rng.uniform_index(4));
    b[i] = static_cast<int>(rng.uniform_index(4));
  }
  EXPECT_LT(normalized_mutual_information(a, b), 0.05);
}

TEST(Nmi, InvariantToLabelPermutation) {
  const std::vector<int> truth{0, 0, 1, 1, 2, 2};
  const std::vector<int> permuted{5, 5, 9, 9, 1, 1};
  EXPECT_NEAR(normalized_mutual_information(permuted, truth), 1.0, 1e-12);
}

TEST(AdjustedRand, IdenticalPartitionsScoreOne) {
  const std::vector<int> labels{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(labels, labels), 1.0);
  const std::vector<int> permuted{5, 5, 0, 0, 9, 9};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(permuted, labels), 1.0);
}

TEST(AdjustedRand, IndependentPartitionsNearZero) {
  dasc::Rng rng(87);
  std::vector<int> a(3000);
  std::vector<int> b(3000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int>(rng.uniform_index(4));
    b[i] = static_cast<int>(rng.uniform_index(4));
  }
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.03);
}

TEST(AdjustedRand, PunishesSplitsUnlikePurity) {
  // Every point its own cluster: purity is gamed to 1, ARI is ~0.
  const std::vector<int> truth{0, 0, 0, 1, 1, 1};
  const std::vector<int> singletons{0, 1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(clustering_purity(singletons, truth), 1.0);
  EXPECT_NEAR(adjusted_rand_index(singletons, truth), 0.0, 1e-12);
}

TEST(AdjustedRand, PartialAgreementBetweenZeroAndOne) {
  const std::vector<int> truth{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<int> noisy{0, 0, 0, 1, 1, 1, 1, 1};
  const double ari = adjusted_rand_index(noisy, truth);
  EXPECT_GT(ari, 0.2);
  EXPECT_LT(ari, 1.0);
}

TEST(AdjustedRand, BothTrivialPartitionsScoreOne) {
  const std::vector<int> all_same(5, 0);
  EXPECT_DOUBLE_EQ(adjusted_rand_index(all_same, all_same), 1.0);
}

TEST(FrobeniusNorm, MatchesMatrixMethod) {
  linalg::DenseMatrix m(2, 2);
  m(0, 0) = 3.0;
  m(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
}

}  // namespace
}  // namespace dasc::clustering
