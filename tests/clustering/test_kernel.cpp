#include "clustering/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/synthetic.hpp"

namespace dasc::clustering {
namespace {

// Golden median for SuggestBandwidth.PinnedSampledMedianRegression,
// computed once from this repo's deterministic sampler (see that test for
// why the value is host-independent).
constexpr double kGoldenSampledMedian = 0.78852774209595178;

TEST(GaussianKernel, KnownValues) {
  const std::vector<double> x{0.0, 0.0};
  const std::vector<double> y{3.0, 4.0};  // distance 5
  EXPECT_NEAR(gaussian_kernel(x, y, 1.0), std::exp(-12.5), 1e-15);
  EXPECT_DOUBLE_EQ(gaussian_kernel(x, x, 1.0), 1.0);
}

TEST(GaussianKernel, BandwidthControlsDecay) {
  const std::vector<double> x{0.0};
  const std::vector<double> y{1.0};
  EXPECT_LT(gaussian_kernel(x, y, 0.5), gaussian_kernel(x, y, 2.0));
}

TEST(GaussianKernel, RejectsNonPositiveSigma) {
  const std::vector<double> x{0.0};
  EXPECT_THROW(gaussian_kernel(x, x, 0.0), dasc::InvalidArgument);
  EXPECT_THROW(gaussian_kernel(x, x, -1.0), dasc::InvalidArgument);
}

TEST(SuggestBandwidth, PositiveAndScaleAware) {
  dasc::Rng rng(41);
  const data::PointSet small = data::make_uniform(100, 4, rng);
  const double sigma_small = suggest_bandwidth(small);
  EXPECT_GT(sigma_small, 0.0);

  // Scale the data by 10x: bandwidth should grow roughly accordingly.
  data::PointSet big(100, 4);
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t d = 0; d < 4; ++d) {
      big.at(i, d) = small.at(i, d) * 10.0;
    }
  }
  const double sigma_big = suggest_bandwidth(big);
  EXPECT_GT(sigma_big, 3.0 * sigma_small);
}

TEST(SuggestBandwidth, DegenerateDatasetFallsBackToOne) {
  const data::PointSet points(5, 2, std::vector<double>(10, 0.5));
  EXPECT_DOUBLE_EQ(suggest_bandwidth(points), 1.0);
}

TEST(SuggestBandwidth, SingletonDatasetFallsBackToOne) {
  const data::PointSet points(1, 3, std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(suggest_bandwidth(points), 1.0);
}

TEST(SuggestBandwidth, DeterministicAcrossCalls) {
  // The sampler uses a fixed internal seed, so the suggestion is a pure
  // function of the dataset — repeated calls and call order cannot drift.
  dasc::Rng rng(47);
  const data::PointSet points = data::make_uniform(500, 6, rng);
  const double first = suggest_bandwidth(points);
  const double second = suggest_bandwidth(points);
  EXPECT_EQ(first, second);
}

TEST(SuggestBandwidth, SmallDatasetUsesExactMedian) {
  // n <= 64 enumerates all pairs: four collinear points at 0, 1, 2, 3
  // have pairwise distances {1,1,1,2,2,3}; lower median (index 3 of 6) = 2.
  data::PointSet points(4, 1, std::vector<double>{0.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(suggest_bandwidth(points), 2.0);
}

TEST(SuggestBandwidth, PinnedSampledMedianRegression) {
  // Golden value for the sampled (n > 64) path: every operation in the
  // pipeline (fixed-seed xoshiro draws, subtract/multiply/add in canonical
  // lane order, exactly-rounded sqrt, nth_element median) is IEEE
  // deterministic, so this double is exact on every host. A change means
  // the sampler's draw sequence or the distance numerics changed.
  dasc::Rng rng(48);
  const data::PointSet points = data::make_uniform(300, 4, rng);
  const double sigma = suggest_bandwidth(points);
  EXPECT_GT(sigma, 0.0);
  const double again = suggest_bandwidth(points);
  EXPECT_EQ(sigma, again);
  EXPECT_DOUBLE_EQ(sigma, kGoldenSampledMedian);
}

TEST(GaussianGram, SymmetricWithUnitDiagonal) {
  dasc::Rng rng(42);
  const data::PointSet points = data::make_uniform(40, 3, rng);
  const linalg::DenseMatrix gram = gaussian_gram(points, 0.5);
  EXPECT_TRUE(gram.is_symmetric(1e-12));
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_DOUBLE_EQ(gram(i, i), 1.0);
  }
}

TEST(GaussianGram, EntriesMatchKernelFunction) {
  dasc::Rng rng(43);
  const data::PointSet points = data::make_uniform(10, 4, rng);
  const linalg::DenseMatrix gram = gaussian_gram(points, 0.7);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      const double expected =
          i == j ? 1.0
                 : gaussian_kernel(points.point(i), points.point(j), 0.7);
      EXPECT_NEAR(gram(i, j), expected, 1e-15);
    }
  }
}

TEST(GaussianGram, ParallelMatchesSequential) {
  dasc::Rng rng(44);
  const data::PointSet points = data::make_uniform(60, 5, rng);
  const linalg::DenseMatrix seq = gaussian_gram(points, 0.4, 1);
  const linalg::DenseMatrix par = gaussian_gram(points, 0.4, 4);
  EXPECT_DOUBLE_EQ(seq.max_abs_diff(par), 0.0);
}

TEST(GaussianGramSubset, MatchesFullGramOnIndices) {
  dasc::Rng rng(45);
  const data::PointSet points = data::make_uniform(30, 3, rng);
  const linalg::DenseMatrix full = gaussian_gram(points, 0.6);
  const std::vector<std::size_t> indices{3, 7, 11, 29};
  const linalg::DenseMatrix sub =
      gaussian_gram_subset(points, indices, 0.6);
  for (std::size_t a = 0; a < indices.size(); ++a) {
    for (std::size_t b = 0; b < indices.size(); ++b) {
      EXPECT_NEAR(sub(a, b), full(indices[a], indices[b]), 1e-15);
    }
  }
}

TEST(GaussianGramSubset, RejectsOutOfRangeIndex) {
  dasc::Rng rng(46);
  const data::PointSet points = data::make_uniform(5, 2, rng);
  const std::vector<std::size_t> bad{0, 5};
  EXPECT_THROW(gaussian_gram_subset(points, bad, 0.5),
               dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::clustering
