#include "clustering/kmeans.hpp"

#include <gtest/gtest.h>

#include "clustering/metrics.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"

namespace dasc::clustering {
namespace {

TEST(KMeans, RecoversWellSeparatedBlobs) {
  dasc::Rng data_rng(51);
  data::MixtureParams mix;
  mix.n = 300;
  mix.dim = 8;
  mix.k = 3;
  mix.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);

  KMeansParams params;
  params.k = 3;
  dasc::Rng rng(52);
  const KMeansResult result = kmeans(points, params, rng);
  EXPECT_GT(clustering_accuracy(result.labels, points.labels()), 0.98);
}

TEST(KMeans, LabelsInRangeAndAllClustersUsed) {
  dasc::Rng data_rng(53);
  const data::PointSet points = data::make_uniform(200, 4, data_rng);
  KMeansParams params;
  params.k = 5;
  dasc::Rng rng(54);
  const KMeansResult result = kmeans(points, params, rng);
  std::vector<int> counts(5, 0);
  for (int label : result.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 5);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  dasc::Rng data_rng(55);
  const data::PointSet points = data::make_uniform(300, 6, data_rng);
  double prev = 1e300;
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    KMeansParams params;
    params.k = k;
    dasc::Rng rng(56);
    const KMeansResult result = kmeans(points, params, rng);
    EXPECT_LT(result.inertia, prev + 1e-9);
    prev = result.inertia;
  }
}

TEST(KMeans, KEqualsOneCentroidIsMean) {
  const data::PointSet points(4, 1, {0.0, 2.0, 4.0, 6.0});
  KMeansParams params;
  params.k = 1;
  dasc::Rng rng(57);
  const KMeansResult result = kmeans(points, params, rng);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_NEAR(result.centroids[0][0], 3.0, 1e-12);
  EXPECT_TRUE(result.converged);
}

TEST(KMeans, KEqualsNPerfectFit) {
  dasc::Rng data_rng(58);
  const data::PointSet points = data::make_uniform(10, 3, data_rng);
  KMeansParams params;
  params.k = 10;
  dasc::Rng rng(59);
  const KMeansResult result = kmeans(points, params, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, DeterministicForSameSeed) {
  dasc::Rng data_rng(60);
  const data::PointSet points = data::make_uniform(150, 4, data_rng);
  KMeansParams params;
  params.k = 4;
  dasc::Rng r1(99);
  dasc::Rng r2(99);
  const auto a = kmeans(points, params, r1);
  const auto b = kmeans(points, params, r2);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(KMeans, PlusPlusBeatsRandomInitOnAverageInertia) {
  dasc::Rng data_rng(61);
  data::MixtureParams mix;
  mix.n = 240;
  mix.dim = 12;
  mix.k = 8;
  mix.cluster_stddev = 0.03;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);

  double pp_total = 0.0;
  double rand_total = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    KMeansParams params;
    params.k = 8;
    params.max_iterations = 5;  // tight budget exposes init quality
    params.init = KMeansInit::kPlusPlus;
    dasc::Rng r1(1000 + trial);
    pp_total += kmeans(points, params, r1).inertia;
    params.init = KMeansInit::kRandom;
    dasc::Rng r2(1000 + trial);
    rand_total += kmeans(points, params, r2).inertia;
  }
  EXPECT_LE(pp_total, rand_total * 1.05);
}

TEST(KMeans, DuplicatePointsHandled) {
  // All points identical: any k partitions them without crashing.
  const data::PointSet points(6, 2, std::vector<double>(12, 0.5));
  KMeansParams params;
  params.k = 3;
  dasc::Rng rng(62);
  const KMeansResult result = kmeans(points, params, rng);
  EXPECT_EQ(result.labels.size(), 6u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, RejectsBadParameters) {
  dasc::Rng data_rng(63);
  const data::PointSet points = data::make_uniform(5, 2, data_rng);
  KMeansParams params;
  params.k = 6;  // k > n
  dasc::Rng rng(64);
  EXPECT_THROW(kmeans(points, params, rng), dasc::InvalidArgument);
  params.k = 0;
  EXPECT_THROW(kmeans(points, params, rng), dasc::InvalidArgument);
  params.k = 2;
  params.max_iterations = 0;
  EXPECT_THROW(kmeans(points, params, rng), dasc::InvalidArgument);
}

TEST(KMeans, ParallelAssignmentMatchesSequential) {
  dasc::Rng data_rng(65);
  const data::PointSet points = data::make_uniform(200, 8, data_rng);
  KMeansParams params;
  params.k = 6;
  params.threads = 1;
  dasc::Rng r1(7);
  const auto seq = kmeans(points, params, r1);
  params.threads = 4;
  dasc::Rng r2(7);
  const auto par = kmeans(points, params, r2);
  EXPECT_EQ(seq.labels, par.labels);
}

}  // namespace
}  // namespace dasc::clustering
