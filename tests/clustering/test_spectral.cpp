#include "clustering/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "clustering/kernel.hpp"
#include "clustering/metrics.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "linalg/vector_ops.hpp"

namespace dasc::clustering {
namespace {

TEST(SpectralEmbedding, RowsAreUnitNorm) {
  dasc::Rng rng(91);
  const data::PointSet points = data::make_uniform(50, 3, rng);
  const linalg::DenseMatrix gram = gaussian_gram(points, 0.5);
  const linalg::DenseMatrix embedding = spectral_embedding(gram, 3, 128);
  ASSERT_EQ(embedding.rows(), 50u);
  ASSERT_EQ(embedding.cols(), 3u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(linalg::norm2(embedding.row(i)), 1.0, 1e-9);
  }
}

TEST(SpectralEmbedding, DensePathMatchesLanczosPath) {
  dasc::Rng rng(92);
  data::MixtureParams mix;
  mix.n = 60;
  mix.dim = 4;
  mix.k = 2;
  mix.cluster_stddev = 0.03;
  const data::PointSet points = data::make_gaussian_mixture(mix, rng);
  const linalg::DenseMatrix gram = gaussian_gram(points, 0.3);

  const linalg::DenseMatrix dense = spectral_embedding(gram, 2, 1000);
  const linalg::DenseMatrix lanczos = spectral_embedding(gram, 2, 1);
  // Embeddings are unique up to column sign; compare |<row_i, row_j>|
  // structure via pairwise dot products instead of raw entries.
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      const double d = std::abs(linalg::dot(dense.row(i), dense.row(j)));
      const double l = std::abs(linalg::dot(lanczos.row(i), lanczos.row(j)));
      EXPECT_NEAR(d, l, 1e-4);
    }
  }
}

TEST(SpectralCluster, SeparatesGaussianBlobs) {
  dasc::Rng data_rng(93);
  data::MixtureParams mix;
  mix.n = 150;
  mix.dim = 8;
  mix.k = 3;
  mix.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);

  SpectralParams params;
  params.k = 3;
  dasc::Rng rng(94);
  const SpectralResult result = spectral_cluster(points, params, rng);
  EXPECT_GT(clustering_accuracy(result.labels, points.labels()), 0.95);
  EXPECT_EQ(result.gram_bytes, linalg::gram_entry_bytes(150u * 150u));
}

TEST(SpectralCluster, SeparatesConcentricRings) {
  // The motivating case for spectral methods: K-means on raw coordinates
  // cannot split concentric rings; the spectral embedding can.
  dasc::Rng data_rng(95);
  const data::PointSet points = data::make_two_rings(200, 0.004, data_rng);

  SpectralParams params;
  params.k = 2;
  params.sigma = 0.05;  // local neighbourhood kernel
  dasc::Rng rng(96);
  const SpectralResult spectral = spectral_cluster(points, params, rng);
  const double spectral_acc =
      clustering_accuracy(spectral.labels, points.labels());

  KMeansParams km;
  km.k = 2;
  dasc::Rng km_rng(97);
  const auto kmeans_result = kmeans(points, km, km_rng);
  const double kmeans_acc =
      clustering_accuracy(kmeans_result.labels, points.labels());

  EXPECT_GT(spectral_acc, 0.95);
  EXPECT_GT(spectral_acc, kmeans_acc + 0.2);
}

TEST(SpectralClusterGram, KOneReturnsSingleCluster) {
  dasc::Rng rng(98);
  const data::PointSet points = data::make_uniform(20, 2, rng);
  const linalg::DenseMatrix gram = gaussian_gram(points, 0.5);
  const auto labels = spectral_cluster_gram(gram, 1, rng);
  for (int label : labels) EXPECT_EQ(label, 0);
}

TEST(SpectralClusterGram, KLargerThanNClamped) {
  dasc::Rng rng(99);
  const data::PointSet points = data::make_uniform(5, 2, rng);
  const linalg::DenseMatrix gram = gaussian_gram(points, 0.5);
  const auto labels = spectral_cluster_gram(gram, 10, rng);
  EXPECT_EQ(labels.size(), 5u);
  for (int label : labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 5);
  }
}

TEST(SpectralCluster, RejectsBadInputs) {
  dasc::Rng rng(100);
  SpectralParams params;
  params.k = 2;
  EXPECT_THROW(spectral_cluster(data::PointSet(), params, rng),
               dasc::InvalidArgument);
  EXPECT_THROW(spectral_embedding(linalg::DenseMatrix(3, 4), 1, 10),
               dasc::InvalidArgument);
  EXPECT_THROW(spectral_embedding(linalg::DenseMatrix(3, 3), 4, 10),
               dasc::InvalidArgument);
}

TEST(SpectralEmbedding, IsolatedPointGetsZeroRow) {
  // Two connected points and one with zero affinity to everything.
  linalg::DenseMatrix gram(3, 3, 0.0);
  gram(0, 1) = 1.0;
  gram(1, 0) = 1.0;
  gram(0, 0) = 1.0;
  gram(1, 1) = 1.0;
  gram(2, 2) = 1.0;  // diagonal ignored; point 2 is isolated
  const linalg::DenseMatrix embedding = spectral_embedding(gram, 1, 10);
  EXPECT_NEAR(linalg::norm2(embedding.row(2)), 0.0, 1e-12);
}

}  // namespace
}  // namespace dasc::clustering
