#include "clustering/hungarian.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dasc::clustering {
namespace {

TEST(Hungarian, TrivialSizes) {
  const auto empty = solve_assignment(linalg::DenseMatrix(0, 0));
  EXPECT_TRUE(empty.assignment.empty());
  EXPECT_DOUBLE_EQ(empty.cost, 0.0);

  linalg::DenseMatrix one(1, 1);
  one(0, 0) = 3.5;
  const auto single = solve_assignment(one);
  ASSERT_EQ(single.assignment.size(), 1u);
  EXPECT_EQ(single.assignment[0], 0u);
  EXPECT_DOUBLE_EQ(single.cost, 3.5);
}

TEST(Hungarian, KnownThreeByThree) {
  // Classic example: optimal cost is 5 (0->1, 1->0, 2->2).
  linalg::DenseMatrix cost(3, 3);
  const double values[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) cost(i, j) = values[i][j];
  }
  const auto result = solve_assignment(cost);
  EXPECT_DOUBLE_EQ(result.cost, 5.0);
}

TEST(Hungarian, IdentityIsOptimalForDiagonalDominance) {
  linalg::DenseMatrix cost(4, 4, 10.0);
  for (std::size_t i = 0; i < 4; ++i) cost(i, i) = 1.0;
  const auto result = solve_assignment(cost);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(result.assignment[i], i);
  EXPECT_DOUBLE_EQ(result.cost, 4.0);
}

TEST(Hungarian, AssignmentIsAPermutation) {
  dasc::Rng rng(71);
  linalg::DenseMatrix cost(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) cost(i, j) = rng.uniform();
  }
  const auto result = solve_assignment(cost);
  std::vector<std::size_t> sorted = result.assignment;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Hungarian, BeatsGreedyOrMatchesIt) {
  dasc::Rng rng(73);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 6;
    linalg::DenseMatrix cost(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) cost(i, j) = rng.uniform();
    }
    const auto result = solve_assignment(cost);

    // Greedy row-by-row assignment for comparison.
    std::vector<bool> used(n, false);
    double greedy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = 1e300;
      std::size_t best_j = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (!used[j] && cost(i, j) < best) {
          best = cost(i, j);
          best_j = j;
        }
      }
      used[best_j] = true;
      greedy += best;
    }
    EXPECT_LE(result.cost, greedy + 1e-12);
  }
}

TEST(Hungarian, HandlesNegativeCosts) {
  linalg::DenseMatrix cost(2, 2);
  cost(0, 0) = -5.0;
  cost(0, 1) = 0.0;
  cost(1, 0) = 0.0;
  cost(1, 1) = -5.0;
  const auto result = solve_assignment(cost);
  EXPECT_DOUBLE_EQ(result.cost, -10.0);
}

TEST(Hungarian, RejectsNonSquare) {
  EXPECT_THROW(solve_assignment(linalg::DenseMatrix(2, 3)),
               dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::clustering
