// Parameterized sweeps over the clustering stack: K-means across the
// (k, dim, init) grid and spectral clustering across bandwidths must
// uphold label validity, determinism, and quality floors everywhere.
#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "clustering/kmeans.hpp"
#include "clustering/metrics.hpp"
#include "clustering/spectral.hpp"
#include "data/synthetic.hpp"

namespace dasc::clustering {
namespace {

using KMeansGrid = std::tuple<std::size_t /*k*/, std::size_t /*dim*/,
                              int /*init*/>;

class KMeansSweep : public ::testing::TestWithParam<KMeansGrid> {};

TEST_P(KMeansSweep, RecoversGeneratingMixture) {
  const auto [k, dim, init] = GetParam();
  Rng data_rng(1200 + k * 17 + dim);
  data::MixtureParams mix;
  mix.n = 60 * k;
  mix.dim = dim;
  mix.k = k;
  mix.cluster_stddev = 0.03;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);

  KMeansParams params;
  params.k = k;
  params.init =
      init == 0 ? KMeansInit::kPlusPlus : KMeansInit::kRandom;

  // A single Lloyd run is seed-dependent (local minima are real); the
  // stable property is that restarts recover the mixture. Keep the
  // lowest-inertia of 5 runs — standard practice — and assert on it.
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int restart = 0; restart < 5; ++restart) {
    Rng rng(1300 + k * 7 + restart);
    KMeansResult result = kmeans(points, params, rng);
    if (result.inertia < best.inertia) best = std::move(result);
  }

  // Valid labels and all clusters populated.
  std::vector<int> counts(k, 0);
  for (int label : best.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, static_cast<int>(k));
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_GT(c, 0);
  // Floors by corner difficulty: 8 clusters crammed into 2-D can place
  // generated centers nearly on top of each other (capping even the ideal
  // agreement), and random init at k = 8 keeps split/merged clusters even
  // across restarts — precisely the k-means++ motivation the micro-bench
  // quantifies.
  const bool cramped = dim == 2 && k == 8;
  const bool random_init = init != 0;
  const double acc_floor = cramped ? 0.6 : (random_init ? 0.7 : 0.9);
  const double ari_floor = cramped ? 0.5 : (random_init ? 0.55 : 0.75);
  EXPECT_GT(clustering_accuracy(best.labels, points.labels()), acc_floor);
  EXPECT_GT(adjusted_rand_index(best.labels, points.labels()), ari_floor);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KMeansSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),        // k
                       ::testing::Values(2, 8, 32),       // dim
                       ::testing::Values(0, 1)));          // init

class SpectralBandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpectralBandwidthSweep, StableAcrossReasonableSigmas) {
  const double sigma = GetParam();
  Rng data_rng(1400);
  data::MixtureParams mix;
  mix.n = 120;
  mix.dim = 8;
  mix.k = 3;
  mix.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);

  SpectralParams params;
  params.k = 3;
  params.sigma = sigma;
  Rng rng(1401);
  const SpectralResult result = spectral_cluster(points, params, rng);
  EXPECT_GT(clustering_accuracy(result.labels, points.labels()), 0.9)
      << "sigma = " << sigma;
}

INSTANTIATE_TEST_SUITE_P(Sigmas, SpectralBandwidthSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 1.0));

class MetricsAgreementSweep : public ::testing::TestWithParam<double> {};

TEST_P(MetricsAgreementSweep, MetricsDegradeTogetherWithNoise) {
  // Corrupt a fraction of labels: accuracy, purity, NMI, and ARI must all
  // fall below their clean values (cross-metric consistency).
  const double corruption = GetParam();
  Rng data_rng(1500);
  data::MixtureParams mix;
  mix.n = 400;
  mix.dim = 4;
  mix.k = 4;
  mix.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);

  std::vector<int> corrupted = points.labels();
  Rng noise_rng(1501);
  const auto flips =
      static_cast<std::size_t>(corruption * static_cast<double>(400));
  for (std::size_t f = 0; f < flips; ++f) {
    const std::size_t i = noise_rng.uniform_index(400);
    corrupted[i] = static_cast<int>(noise_rng.uniform_index(4));
  }

  const double acc = clustering_accuracy(corrupted, points.labels());
  const double purity = clustering_purity(corrupted, points.labels());
  const double nmi =
      normalized_mutual_information(corrupted, points.labels());
  const double ari = adjusted_rand_index(corrupted, points.labels());

  if (corruption == 0.0) {
    EXPECT_DOUBLE_EQ(acc, 1.0);
    EXPECT_DOUBLE_EQ(purity, 1.0);
    EXPECT_NEAR(nmi, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(ari, 1.0);
  } else {
    EXPECT_LT(acc, 1.0);
    EXPECT_LT(nmi, 1.0);
    EXPECT_LT(ari, 1.0);
    EXPECT_GE(purity, acc - 1e-12);  // purity dominates accuracy
  }
}

INSTANTIATE_TEST_SUITE_P(Corruption, MetricsAgreementSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.6));

}  // namespace
}  // namespace dasc::clustering
