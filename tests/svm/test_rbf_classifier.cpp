#include "svm/rbf_classifier.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "data/synthetic.hpp"

namespace dasc::svm {
namespace {

data::PointSet blobs(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  data::MixtureParams params;
  params.n = n;
  params.dim = 6;
  params.k = k;
  params.cluster_stddev = 0.04;
  return data::make_gaussian_mixture(params, rng);
}

TEST(RbfClassifier, MulticlassBlobsTrainingAccuracy) {
  const data::PointSet points = blobs(180, 3, 821);
  Rng rng(822);
  const RbfClassifier model = RbfClassifier::train(points, {}, rng);
  EXPECT_EQ(model.num_classes(), 3u);
  EXPECT_GT(model.accuracy(points), 0.97);
}

TEST(RbfClassifier, GeneralizesToHeldOutPoints) {
  const data::PointSet train = blobs(200, 4, 823);
  Rng rng(824);
  const RbfClassifier model = RbfClassifier::train(train, {}, rng);

  // Fresh draws from the same generator seed produce the same component
  // centers, so a second dataset is a true held-out sample.
  Rng test_rng(823);
  data::MixtureParams mix;
  mix.n = 120;
  mix.dim = 6;
  mix.k = 4;
  mix.cluster_stddev = 0.04;
  data::PointSet held_out = data::make_gaussian_mixture(mix, test_rng);
  // Skip the first 200 draws' worth of RNG state difference by accepting
  // slightly lower accuracy than on training data.
  EXPECT_GT(model.accuracy(held_out), 0.9);
}

TEST(RbfClassifier, RingsNeedTheKernel) {
  // Concentric rings: linearly inseparable; the RBF kernel handles them.
  Rng data_rng(825);
  const data::PointSet points = data::make_two_rings(160, 0.005, data_rng);
  RbfClassifierParams params;
  params.sigma = 0.08;
  params.svm.c = 10.0;
  Rng rng(826);
  const RbfClassifier model = RbfClassifier::train(points, params, rng);
  EXPECT_GT(model.accuracy(points), 0.95);
}

TEST(RbfClassifier, SigmaAutoAndReporting) {
  const data::PointSet points = blobs(60, 2, 827);
  Rng rng(828);
  const RbfClassifier model = RbfClassifier::train(points, {}, rng);
  EXPECT_GT(model.sigma(), 0.0);
  EXPECT_EQ(model.gram_bytes(), linalg::gram_entry_bytes(60u * 60u));
}

TEST(RbfClassifier, RejectsBadInputs) {
  Rng rng(829);
  EXPECT_THROW(RbfClassifier::train(data::PointSet(), {}, rng),
               dasc::InvalidArgument);
  data::PointSet unlabelled(10, 2);
  EXPECT_THROW(RbfClassifier::train(unlabelled, {}, rng),
               dasc::InvalidArgument);
  data::PointSet one_class(10, 2);
  one_class.set_labels(std::vector<int>(10, 7));
  EXPECT_THROW(RbfClassifier::train(one_class, {}, rng),
               dasc::InvalidArgument);

  const data::PointSet points = blobs(20, 2, 830);
  const RbfClassifier model = RbfClassifier::train(points, {}, rng);
  const std::vector<double> wrong{0.5};
  EXPECT_THROW(model.predict(wrong), dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::svm
