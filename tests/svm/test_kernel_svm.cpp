#include "svm/kernel_svm.hpp"

#include <gtest/gtest.h>

#include "clustering/kernel.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "linalg/vector_ops.hpp"

namespace dasc::svm {
namespace {

/// Linear kernel Gram for hand-built small problems.
linalg::DenseMatrix linear_gram(const data::PointSet& points) {
  linalg::DenseMatrix gram(points.size(), points.size(), 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      gram(i, j) = linalg::dot(points.point(i), points.point(j));
    }
  }
  return gram;
}

TEST(KernelSvm, SeparatesLinearlySeparableData) {
  // Two clouds separated along dimension 0.
  Rng data_rng(811);
  data::PointSet points(60, 2);
  std::vector<int> labels(60);
  for (std::size_t i = 0; i < 60; ++i) {
    const bool positive = i % 2 == 0;
    points.at(i, 0) = (positive ? 2.0 : -2.0) + data_rng.normal(0.0, 0.3);
    points.at(i, 1) = data_rng.normal(0.0, 0.5);
    labels[i] = positive ? 1 : -1;
  }
  const linalg::DenseMatrix gram = linear_gram(points);
  Rng rng(812);
  const KernelSvm model = KernelSvm::train(gram, labels, {}, rng);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    std::vector<double> row(60);
    for (std::size_t t = 0; t < 60; ++t) row[t] = gram(i, t);
    if (model.predict(row) == labels[i]) ++correct;
  }
  EXPECT_GE(correct, 58u);
}

TEST(KernelSvm, RbfKernelSolvesXor) {
  // XOR is the classic non-linear case: impossible for a linear SVM,
  // solved by the Gaussian kernel.
  Rng data_rng(813);
  data::PointSet points(80, 2);
  std::vector<int> labels(80);
  for (std::size_t i = 0; i < 80; ++i) {
    const double x = (i & 1) ? 1.0 : 0.0;
    const double y = (i & 2) ? 1.0 : 0.0;
    points.at(i, 0) = x + data_rng.normal(0.0, 0.05);
    points.at(i, 1) = y + data_rng.normal(0.0, 0.05);
    labels[i] = (static_cast<int>(x) ^ static_cast<int>(y)) == 1 ? 1 : -1;
  }
  const linalg::DenseMatrix gram = clustering::gaussian_gram(points, 0.3);
  SvmParams params;
  params.c = 10.0;
  Rng rng(814);
  const KernelSvm model = KernelSvm::train(gram, labels, params, rng);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < 80; ++i) {
    std::vector<double> row(80);
    for (std::size_t t = 0; t < 80; ++t) row[t] = gram(i, t);
    if (model.predict(row) == labels[i]) ++correct;
  }
  EXPECT_GE(correct, 76u);
}

TEST(KernelSvm, AlphasRespectBoxConstraint) {
  Rng data_rng(815);
  data::MixtureParams mix;
  mix.n = 100;
  mix.dim = 4;
  mix.k = 2;
  mix.cluster_stddev = 0.1;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);
  std::vector<int> labels(100);
  for (std::size_t i = 0; i < 100; ++i) {
    labels[i] = points.label(i) == 0 ? 1 : -1;
  }
  const linalg::DenseMatrix gram = clustering::gaussian_gram(points, 0.5);
  SvmParams params;
  params.c = 2.5;
  Rng rng(816);
  const KernelSvm model = KernelSvm::train(gram, labels, params, rng);
  for (double a : model.alphas()) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, params.c + 1e-12);
  }
  EXPECT_GT(model.num_support_vectors(), 0u);
  EXPECT_LT(model.num_support_vectors(), 100u);  // sparse solution
}

TEST(KernelSvm, DualConstraintHolds) {
  // sum alpha_i y_i == 0 at any SMO fixed point (pairwise updates
  // preserve it exactly).
  Rng data_rng(817);
  data::MixtureParams mix;
  mix.n = 60;
  mix.dim = 3;
  mix.k = 2;
  mix.cluster_stddev = 0.05;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);
  std::vector<int> labels(60);
  for (std::size_t i = 0; i < 60; ++i) {
    labels[i] = points.label(i) == 0 ? 1 : -1;
  }
  const linalg::DenseMatrix gram = clustering::gaussian_gram(points, 0.5);
  Rng rng(818);
  const KernelSvm model = KernelSvm::train(gram, labels, {}, rng);
  double balance = 0.0;
  for (std::size_t i = 0; i < 60; ++i) {
    balance += model.alphas()[i] * labels[i];
  }
  EXPECT_NEAR(balance, 0.0, 1e-9);
}

TEST(KernelSvm, RejectsBadInputs) {
  linalg::DenseMatrix gram(4, 4, 1.0);
  Rng rng(819);
  EXPECT_THROW(KernelSvm::train(gram, {1, -1, 1}, {}, rng),
               dasc::InvalidArgument);  // size mismatch
  EXPECT_THROW(KernelSvm::train(gram, {1, 1, 1, 1}, {}, rng),
               dasc::InvalidArgument);  // one class only
  EXPECT_THROW(KernelSvm::train(gram, {1, -1, 2, -1}, {}, rng),
               dasc::InvalidArgument);  // label not in {-1, +1}
  SvmParams bad;
  bad.c = 0.0;
  EXPECT_THROW(KernelSvm::train(gram, {1, -1, 1, -1}, bad, rng),
               dasc::InvalidArgument);
  EXPECT_THROW(KernelSvm::train(linalg::DenseMatrix(2, 3), {1, -1}, {}, rng),
               dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::svm
