#include "mapreduce/shuffle.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dasc::mapreduce {
namespace {

TEST(Partitioner, StableAndInRange) {
  for (const std::string key : {"a", "b", "signature01", ""}) {
    const std::size_t p = partition_for_key(key, 7);
    EXPECT_LT(p, 7u);
    EXPECT_EQ(p, partition_for_key(key, 7));  // deterministic
  }
  EXPECT_THROW(partition_for_key("x", 0), dasc::InvalidArgument);
}

TEST(Partitioner, SpreadsKeys) {
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 800; ++i) {
    ++counts[partition_for_key("key" + std::to_string(i), 8)];
  }
  for (int c : counts) EXPECT_GT(c, 20);  // no partition starves
}

TEST(PartitionOutputs, EveryRecordLandsInItsKeyPartition) {
  std::vector<std::vector<Record>> outputs(3);
  for (int task = 0; task < 3; ++task) {
    for (int i = 0; i < 20; ++i) {
      outputs[task].push_back(
          {"k" + std::to_string(i % 5), "v" + std::to_string(i)});
    }
  }
  const auto partitions = partition_outputs(outputs, 4);
  std::size_t total = 0;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (const auto& record : partitions[p]) {
      EXPECT_EQ(partition_for_key(record.key, 4), p);
      ++total;
    }
  }
  EXPECT_EQ(total, 60u);
}

TEST(SortAndGroup, GroupsEqualKeys) {
  const auto groups = sort_and_group(
      {{"b", "1"}, {"a", "2"}, {"b", "3"}, {"a", "4"}, {"c", "5"}});
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].key, "a");
  EXPECT_EQ(groups[0].values, (std::vector<std::string>{"2", "4"}));
  EXPECT_EQ(groups[1].key, "b");
  EXPECT_EQ(groups[1].values, (std::vector<std::string>{"1", "3"}));
  EXPECT_EQ(groups[2].key, "c");
}

TEST(SortAndGroup, StableWithinKey) {
  const auto groups =
      sort_and_group({{"k", "first"}, {"k", "second"}, {"k", "third"}});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].values,
            (std::vector<std::string>{"first", "second", "third"}));
}

TEST(SortAndGroup, EmptyInput) {
  EXPECT_TRUE(sort_and_group({}).empty());
}

TEST(ShuffleBytes, CountsKeyValueAndFraming) {
  const std::vector<std::vector<Record>> partitions{
      {{"ab", "cde"}},  // 2 + 3 + 2 framing = 7
      {}};
  EXPECT_EQ(shuffle_bytes(partitions), 7u);
}

}  // namespace
}  // namespace dasc::mapreduce
