#include "mapreduce/shuffle.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"

namespace dasc::mapreduce {
namespace {

TEST(Partitioner, StableAndInRange) {
  for (const std::string key : {"a", "b", "signature01", ""}) {
    const std::size_t p = partition_for_key(key, 7);
    EXPECT_LT(p, 7u);
    EXPECT_EQ(p, partition_for_key(key, 7));  // deterministic
  }
  EXPECT_THROW(partition_for_key("x", 0), dasc::InvalidArgument);
}

TEST(Partitioner, SpreadsKeys) {
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 800; ++i) {
    ++counts[partition_for_key("key" + std::to_string(i), 8)];
  }
  for (int c : counts) EXPECT_GT(c, 20);  // no partition starves
}

TEST(PartitionOutputs, EveryRecordLandsInItsKeyPartition) {
  std::vector<std::vector<Record>> outputs(3);
  for (int task = 0; task < 3; ++task) {
    for (int i = 0; i < 20; ++i) {
      outputs[task].push_back(
          {"k" + std::to_string(i % 5), "v" + std::to_string(i)});
    }
  }
  const auto partitions = partition_outputs(outputs, 4);
  std::size_t total = 0;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (const auto& record : partitions[p]) {
      EXPECT_EQ(partition_for_key(record.key, 4), p);
      ++total;
    }
  }
  EXPECT_EQ(total, 60u);
}

TEST(SortAndGroup, GroupsEqualKeys) {
  const auto groups = sort_and_group(
      {{"b", "1"}, {"a", "2"}, {"b", "3"}, {"a", "4"}, {"c", "5"}});
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].key, "a");
  EXPECT_EQ(groups[0].values, (std::vector<std::string>{"2", "4"}));
  EXPECT_EQ(groups[1].key, "b");
  EXPECT_EQ(groups[1].values, (std::vector<std::string>{"1", "3"}));
  EXPECT_EQ(groups[2].key, "c");
}

TEST(SortAndGroup, StableWithinKey) {
  const auto groups =
      sort_and_group({{"k", "first"}, {"k", "second"}, {"k", "third"}});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].values,
            (std::vector<std::string>{"first", "second", "third"}));
}

TEST(SortAndGroup, EmptyInput) {
  EXPECT_TRUE(sort_and_group({}).empty());
}

TEST(ShuffleBytes, CountsKeyValueAndFraming) {
  const std::vector<std::vector<Record>> partitions{
      {{"ab", "cde"}},  // 2 + 3 + 2 framing = 7
      {}};
  EXPECT_EQ(shuffle_bytes(partitions), 7u);
}

std::vector<std::vector<Record>> synthetic_outputs(std::size_t tasks,
                                                   std::size_t per_task) {
  dasc::Rng rng(41);
  std::vector<std::vector<Record>> outputs(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t i = 0; i < per_task; ++i) {
      // Few distinct keys so groups span tasks; values record provenance
      // so stable ordering is observable.
      outputs[t].push_back({"sig" + std::to_string(rng() % 9),
                            "t" + std::to_string(t) + "v" +
                                std::to_string(i)});
    }
  }
  return outputs;
}

std::vector<KeyGroup> spilled_groups(const SpilledShuffle& shuffle,
                                     std::size_t partition) {
  std::vector<KeyGroup> groups;
  shuffle.for_each_group(partition, [&](const KeyGroup& group) {
    groups.push_back(group);
  });
  return groups;
}

void expect_same_groups(const std::vector<KeyGroup>& a,
                        const std::vector<KeyGroup>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(a[g].key, b[g].key);
    EXPECT_EQ(a[g].values, b[g].values);
  }
}

TEST(SpilledShuffle, GroupsMatchRamPathAcrossBudgetsAndPageSizes) {
  const auto outputs = synthetic_outputs(5, 40);
  const std::size_t num_partitions = 3;
  const auto ram_partitions = partition_outputs(outputs, num_partitions);

  for (const std::size_t budget : {std::size_t{0}, std::size_t{512},
                                   std::size_t{1} << 22}) {
    for (const std::size_t page_bytes : {std::size_t{64},
                                         std::size_t{4096}}) {
      SpoolConfig spool;
      spool.budget_bytes = budget;
      spool.page_bytes = page_bytes;
      const SpilledShuffle shuffle = fetch_and_partition_to_spool(
          outputs, num_partitions, nullptr, 4, nullptr, spool);
      EXPECT_EQ(shuffle.total_record_bytes(),
                shuffle_bytes(ram_partitions));
      for (std::size_t p = 0; p < num_partitions; ++p) {
        expect_same_groups(spilled_groups(shuffle, p),
                           sort_and_group(ram_partitions[p]));
      }
    }
  }
}

TEST(SpilledShuffle, GroupsSurviveFetchAndPageFaults) {
  const auto outputs = synthetic_outputs(4, 30);
  const std::size_t num_partitions = 2;
  const auto ram_partitions = partition_outputs(outputs, num_partitions);

  MetricsRegistry registry;
  FaultInjector injector(
      FaultPlan::parse("seed=5;shuffle.fetch:nth=2:max=2:kind=corrupt;"
                       "spill.page_io:nth=3:max=5:kind=corrupt"),
      &registry);
  SpoolConfig spool;
  spool.page_bytes = 128;
  const SpilledShuffle shuffle = fetch_and_partition_to_spool(
      outputs, num_partitions, &injector, 6, &registry, spool);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    expect_same_groups(spilled_groups(shuffle, p),
                       sort_and_group(ram_partitions[p]));
  }
  EXPECT_GT(injector.total_fired(), 0u);
}

TEST(SpilledShuffle, GroupsAreRepeatable) {
  // Sealed shuffles are const-readable: a reduce re-attempt sees the same
  // stream again.
  const auto outputs = synthetic_outputs(3, 25);
  SpoolConfig spool;
  spool.page_bytes = 96;
  const SpilledShuffle shuffle =
      fetch_and_partition_to_spool(outputs, 2, nullptr, 4, nullptr, spool);
  for (std::size_t p = 0; p < 2; ++p) {
    const auto first = spilled_groups(shuffle, p);
    expect_same_groups(spilled_groups(shuffle, p), first);
  }
}

}  // namespace
}  // namespace dasc::mapreduce
