#include "mapreduce/dfs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/error.hpp"

namespace dasc::mapreduce {
namespace {

std::vector<std::string> make_lines(std::size_t n, const std::string& prefix) {
  std::vector<std::string> lines;
  lines.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    lines.push_back(prefix + std::to_string(i));
  }
  return lines;
}

TEST(Dfs, WriteReadRoundTrip) {
  Dfs dfs({});
  const auto lines = make_lines(100, "line");
  dfs.write_file("/data/input", lines);
  EXPECT_EQ(dfs.read_file("/data/input"), lines);
}

TEST(Dfs, MissingFileThrows) {
  Dfs dfs({});
  EXPECT_THROW(dfs.read_file("/nope"), dasc::IoError);
  EXPECT_THROW(dfs.block_locations("/nope"), dasc::IoError);
}

TEST(Dfs, ExistsAndRemove) {
  Dfs dfs({});
  dfs.write_file("/a", {"x"});
  EXPECT_TRUE(dfs.exists("/a"));
  dfs.remove("/a");
  EXPECT_FALSE(dfs.exists("/a"));
}

TEST(Dfs, ListByPrefix) {
  Dfs dfs({});
  dfs.write_file("/out/part-0", {"a"});
  dfs.write_file("/out/part-1", {"b"});
  dfs.write_file("/other", {"c"});
  const auto paths = dfs.list("/out/");
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "/out/part-0");
  EXPECT_EQ(paths[1], "/out/part-1");
}

TEST(Dfs, SplitsIntoBlocksBySize) {
  DfsConfig config;
  config.block_size_bytes = 64;
  Dfs dfs(config);
  dfs.write_file("/big", make_lines(100, "0123456789"));
  const auto blocks = dfs.block_locations("/big");
  EXPECT_GT(blocks.size(), 5u);
  std::size_t total_lines = 0;
  for (const auto& block : blocks) total_lines += block.num_lines;
  EXPECT_EQ(total_lines, 100u);
}

TEST(Dfs, OversizedSingleLineStillStored) {
  DfsConfig config;
  config.block_size_bytes = 4;
  Dfs dfs(config);
  dfs.write_file("/wide", {"this line is far longer than a block"});
  const auto back = dfs.read_file("/wide");
  ASSERT_EQ(back.size(), 1u);
}

TEST(Dfs, ReplicasOnDistinctNodes) {
  DfsConfig config;
  config.num_nodes = 5;
  config.replication = 3;
  config.block_size_bytes = 32;
  Dfs dfs(config);
  dfs.write_file("/data", make_lines(50, "record"));
  for (const auto& block : dfs.block_locations("/data")) {
    EXPECT_EQ(block.replica_nodes.size(), 3u);
    const std::set<std::size_t> unique(block.replica_nodes.begin(),
                                       block.replica_nodes.end());
    EXPECT_EQ(unique.size(), 3u);
    for (std::size_t node : block.replica_nodes) EXPECT_LT(node, 5u);
  }
}

TEST(Dfs, ReplicationCappedByNodeCount) {
  DfsConfig config;
  config.num_nodes = 2;
  config.replication = 3;
  Dfs dfs(config);
  dfs.write_file("/data", {"x"});
  EXPECT_EQ(dfs.block_locations("/data")[0].replica_nodes.size(), 2u);
}

TEST(Dfs, TotalBytesCountReplication) {
  DfsConfig config;
  config.num_nodes = 4;
  config.replication = 2;
  Dfs dfs(config);
  dfs.write_file("/data", {"abcd"});  // 5 bytes with newline
  EXPECT_EQ(dfs.total_bytes(), 10u);
  std::size_t across_nodes = 0;
  for (std::size_t node = 0; node < 4; ++node) {
    across_nodes += dfs.node_bytes(node);
  }
  EXPECT_EQ(across_nodes, dfs.total_bytes());
}

TEST(Dfs, AppendAddsBlocks) {
  Dfs dfs({});
  dfs.write_file("/log", {"first"});
  dfs.append("/log", {"second", "third"});
  const auto lines = dfs.read_file("/log");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "third");
}

TEST(Dfs, ReadBlockReturnsExactSlice) {
  DfsConfig config;
  config.block_size_bytes = 16;
  Dfs dfs(config);
  dfs.write_file("/data", make_lines(10, "0123456789ab"));
  const auto blocks = dfs.block_locations("/data");
  std::vector<std::string> reassembled;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const auto part = dfs.read_block("/data", b);
    reassembled.insert(reassembled.end(), part.begin(), part.end());
  }
  EXPECT_EQ(reassembled, dfs.read_file("/data"));
  EXPECT_THROW(dfs.read_block("/data", blocks.size()),
               dasc::InvalidArgument);
}

TEST(Dfs, ConcurrentWritersAndReaders) {
  // The job tracker reads splits while reducers append outputs; the DFS
  // must tolerate concurrent access without corruption.
  Dfs dfs({});
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&dfs, &failures, t] {
      try {
        const std::string path = "/worker/" + std::to_string(t);
        for (int round = 0; round < 50; ++round) {
          dfs.write_file(path, make_lines(20, "w" + std::to_string(t)));
          const auto lines = dfs.read_file(path);
          if (lines.size() != 20) ++failures;
          dfs.append(path, {"extra"});
          dfs.list("/worker/");
          dfs.node_bytes(0);
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < 4; ++t) {
    const auto lines = dfs.read_file("/worker/" + std::to_string(t));
    EXPECT_EQ(lines.size(), 21u);  // last write + one append
  }
}

TEST(Dfs, PlacementIsDeterministicPerSeed) {
  DfsConfig config;
  config.seed = 123;
  Dfs a(config);
  Dfs b(config);
  a.write_file("/x", make_lines(30, "line"));
  b.write_file("/x", make_lines(30, "line"));
  const auto blocks_a = a.block_locations("/x");
  const auto blocks_b = b.block_locations("/x");
  ASSERT_EQ(blocks_a.size(), blocks_b.size());
  for (std::size_t i = 0; i < blocks_a.size(); ++i) {
    EXPECT_EQ(blocks_a[i].replica_nodes, blocks_b[i].replica_nodes);
  }
}

TEST(Dfs, ValidatesConfig) {
  DfsConfig bad;
  bad.num_nodes = 0;
  EXPECT_THROW(Dfs{bad}, dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::mapreduce
