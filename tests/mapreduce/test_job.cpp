#include "mapreduce/job.hpp"

#include "mapreduce/virtual_cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <sstream>

#include "common/error.hpp"

namespace dasc::mapreduce {
namespace {

/// Classic word count: the canonical end-to-end exercise of the runtime.
class WordCountMapper final : public Mapper {
 public:
  void map(const std::string& /*key*/, const std::string& value,
           Emitter& out) override {
    std::istringstream stream(value);
    std::string word;
    while (stream >> word) out.emit(word, "1");
  }
};

class SumReducer final : public Reducer {
 public:
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) override {
    long total = 0;
    for (const auto& v : values) total += std::stol(v);
    out.emit(key, std::to_string(total));
  }
};

JobSpec word_count_spec() {
  JobSpec spec;
  spec.conf.num_reducers = 3;
  spec.conf.split_records = 4;
  spec.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  return spec;
}

std::vector<Record> word_count_input() {
  return {
      {"0", "the quick brown fox"},
      {"1", "the lazy dog"},
      {"2", "the quick dog"},
      {"3", "fox fox fox"},
      {"4", "dog"},
  };
}

std::map<std::string, long> to_counts(const std::vector<Record>& output) {
  std::map<std::string, long> counts;
  for (const auto& record : output) {
    counts[record.key] += std::stol(record.value);
  }
  return counts;
}

TEST(Job, WordCountEndToEnd) {
  const JobResult result = run_job(word_count_spec(), word_count_input());
  const auto counts = to_counts(result.output);
  EXPECT_EQ(counts.at("the"), 3);
  EXPECT_EQ(counts.at("fox"), 4);
  EXPECT_EQ(counts.at("dog"), 3);
  EXPECT_EQ(counts.at("quick"), 2);
  EXPECT_EQ(counts.at("brown"), 1);
  EXPECT_EQ(counts.at("lazy"), 1);
}

TEST(Job, CountersAreConsistent) {
  const JobResult result = run_job(word_count_spec(), word_count_input());
  EXPECT_EQ(result.counters.map_input_records, 5u);
  EXPECT_EQ(result.counters.map_output_records, 14u);  // 14 words total
  // The combiner folds duplicate words within each split.
  EXPECT_EQ(result.counters.combine_input_records, 14u);
  EXPECT_LT(result.counters.combine_output_records, 14u);
  EXPECT_EQ(result.counters.reduce_input_groups, 6u);  // distinct words
  EXPECT_EQ(result.counters.reduce_output_records, 6u);
  EXPECT_GT(result.counters.shuffle_bytes, 0u);
}

TEST(Job, CombinerDoesNotChangeResult) {
  JobSpec with = word_count_spec();
  JobSpec without = word_count_spec();
  without.conf.enable_combiner = false;
  const auto counts_with = to_counts(run_job(with, word_count_input()).output);
  const auto counts_without =
      to_counts(run_job(without, word_count_input()).output);
  EXPECT_EQ(counts_with, counts_without);
}

TEST(Job, SplitsRespectSplitRecords) {
  JobSpec spec = word_count_spec();
  spec.conf.split_records = 2;
  const JobResult result = run_job(spec, word_count_input());
  EXPECT_EQ(result.num_map_tasks, 3u);  // ceil(5 / 2)
  EXPECT_EQ(result.map_task_seconds.size(), 3u);
}

TEST(Job, EmptyInputStillRuns) {
  const JobResult result = run_job(word_count_spec(), {});
  EXPECT_TRUE(result.output.empty());
  EXPECT_EQ(result.counters.map_input_records, 0u);
  EXPECT_EQ(result.num_map_tasks, 1u);
}

TEST(Job, SimulatedTimeShrinksWithMoreNodes) {
  // Build a heavier input so task durations are measurable, then reschedule
  // the SAME measured task set onto wider clusters: the virtual-cluster
  // makespan must be monotone in node count (re-running the job would
  // compare two different noisy measurements instead).
  std::vector<Record> input;
  for (int i = 0; i < 256; ++i) {
    std::string text;
    for (int w = 0; w < 200; ++w) {
      text += "word" + std::to_string((i * 31 + w) % 50) + " ";
    }
    input.push_back({std::to_string(i), text});
  }
  JobSpec spec = word_count_spec();
  spec.conf.split_records = 8;
  const JobResult result = run_job(spec, input);

  const double t1 =
      makespan_lpt(result.map_task_seconds, 1, spec.conf.map_slots_per_node) +
      makespan_lpt(result.reduce_task_seconds, 1,
                   spec.conf.reduce_slots_per_node);
  const double t8 =
      makespan_lpt(result.map_task_seconds, 8, spec.conf.map_slots_per_node) +
      makespan_lpt(result.reduce_task_seconds, 8,
                   spec.conf.reduce_slots_per_node);
  EXPECT_LE(t8, t1);
  EXPECT_GT(t1, 0.0);
}

TEST(Job, MissingFactoriesRejected) {
  JobSpec spec;
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  EXPECT_THROW(run_job(spec, {}), dasc::InvalidArgument);
  spec = word_count_spec();
  spec.reducer_factory = nullptr;
  EXPECT_THROW(run_job(spec, {}), dasc::InvalidArgument);
}

TEST(Job, InvalidConfRejected) {
  JobSpec spec = word_count_spec();
  spec.conf.num_reducers = 0;
  EXPECT_THROW(run_job(spec, {}), dasc::InvalidArgument);
}

TEST(Job, DfsJobReadsBlocksAndWritesParts) {
  DfsConfig dfs_config;
  dfs_config.block_size_bytes = 64;
  Dfs dfs(dfs_config);
  std::vector<std::string> lines;
  for (int i = 0; i < 40; ++i) {
    lines.push_back("alpha beta gamma alpha");
  }
  dfs.write_file("/input/corpus", lines);

  JobSpec spec = word_count_spec();
  const JobResult result = run_job_dfs(spec, dfs, "/input/corpus", "/output");

  EXPECT_GT(result.num_map_tasks, 1u);  // one task per block
  const auto counts = to_counts(result.output);
  EXPECT_EQ(counts.at("alpha"), 80);
  EXPECT_EQ(counts.at("beta"), 40);

  // Output persisted as part files.
  const auto parts = dfs.list("/output/part-r-");
  ASSERT_EQ(parts.size(), 1u);
  const auto part_lines = dfs.read_file(parts[0]);
  EXPECT_EQ(part_lines.size(), result.output.size());
  EXPECT_NE(part_lines[0].find('\t'), std::string::npos);
}

TEST(Job, FlakyMapperSucceedsWithRetries) {
  // A mapper whose first attempt per task fails must succeed when the
  // configuration allows retries, with counters unaffected by the failed
  // attempts (Hadoop discards their output).
  // A fresh mapper instance is constructed per attempt, so the "fail only
  // on the first attempt" state must live outside the mapper.
  static std::atomic<int> attempts{0};
  attempts = 0;
  class SharedFlakyMapper final : public Mapper {
   public:
    void map(const std::string& key, const std::string& value,
             Emitter& out) override {
      if (key == "0" && attempts.fetch_add(1) == 0) {
        throw std::runtime_error("transient failure");
      }
      std::istringstream stream(value);
      std::string word;
      while (stream >> word) out.emit(word, "1");
    }
  };

  JobSpec spec = word_count_spec();
  spec.conf.max_task_attempts = 3;
  spec.mapper_factory = [] { return std::make_unique<SharedFlakyMapper>(); };
  const JobResult result = run_job(spec, word_count_input());
  const auto counts = to_counts(result.output);
  EXPECT_EQ(counts.at("the"), 3);
  EXPECT_EQ(counts.at("fox"), 4);
  EXPECT_EQ(result.counters.failed_task_attempts, 1u);
  EXPECT_EQ(result.counters.map_input_records, 5u);  // no double counting
}

TEST(Job, PersistentFailureStillFailsAfterRetries) {
  class AlwaysFailingMapper final : public Mapper {
   public:
    void map(const std::string&, const std::string&, Emitter&) override {
      throw std::runtime_error("permanent failure");
    }
  };
  JobSpec spec = word_count_spec();
  spec.conf.max_task_attempts = 3;
  spec.mapper_factory = [] {
    return std::make_unique<AlwaysFailingMapper>();
  };
  EXPECT_THROW(run_job(spec, word_count_input()), std::runtime_error);
}

TEST(Job, ZeroAttemptConfigRejected) {
  JobSpec spec = word_count_spec();
  spec.conf.max_task_attempts = 0;
  EXPECT_THROW(run_job(spec, word_count_input()), dasc::InvalidArgument);
}

TEST(Job, MapperExceptionPropagates) {
  class ThrowingMapper final : public Mapper {
   public:
    void map(const std::string&, const std::string&, Emitter&) override {
      throw std::runtime_error("mapper failure");
    }
  };
  JobSpec spec = word_count_spec();
  spec.mapper_factory = [] { return std::make_unique<ThrowingMapper>(); };
  EXPECT_THROW(run_job(spec, word_count_input()), std::runtime_error);
}

TEST(Job, ReducerExceptionPropagates) {
  class ThrowingReducer final : public Reducer {
   public:
    void reduce(const std::string&, const std::vector<std::string>&,
                Emitter&) override {
      throw std::runtime_error("reducer failure");
    }
  };
  JobSpec spec = word_count_spec();
  spec.combiner_factory = nullptr;
  spec.reducer_factory = [] { return std::make_unique<ThrowingReducer>(); };
  EXPECT_THROW(run_job(spec, word_count_input()), std::runtime_error);
}

}  // namespace
}  // namespace dasc::mapreduce
