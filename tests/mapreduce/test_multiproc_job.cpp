// Multi-process execution tests: output parity with the in-process
// executor across worker counts, placement determinism across modes and
// seeds, worker.kill recovery mid-map and mid-reduce, worker-side task
// failures surfacing as typed errors, the exec-mode worker binary
// (DESIGN.md section 13), and cross-process speculative execution with
// supervisor-arbitrated commit and kTaskCancel cleanup (section 15).
#include "mapreduce/remote_runner.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/metrics.hpp"
#include "ipc/message.hpp"
#include "ipc/transport.hpp"
#include "mapreduce/job.hpp"
#include "mapreduce/virtual_cluster.hpp"

namespace dasc::mapreduce {
namespace {

class WordCountMapper final : public Mapper {
 public:
  void map(const std::string& /*key*/, const std::string& value,
           Emitter& out) override {
    std::istringstream stream(value);
    std::string word;
    while (stream >> word) out.emit(word, "1");
  }
};

class SumReducer final : public Reducer {
 public:
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) override {
    long total = 0;
    for (const auto& v : values) total += std::stol(v);
    out.emit(key, std::to_string(total));
  }
};

class ThrowingReducer final : public Reducer {
 public:
  void reduce(const std::string&, const std::vector<std::string>&,
              Emitter&) override {
    throw std::runtime_error("reducer exploded");
  }
};

JobSpec word_count_spec() {
  JobSpec spec;
  spec.conf.num_reducers = 3;
  spec.conf.split_records = 2;
  spec.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  return spec;
}

std::vector<Record> word_count_input() {
  std::vector<Record> input;
  for (int i = 0; i < 12; ++i) {
    input.push_back({std::to_string(i),
                     "alpha beta gamma delta word" + std::to_string(i % 5)});
  }
  return input;
}

/// Serialize job output exactly as written (order matters: the parity
/// contract is byte-for-byte, not up-to-reordering).
std::string flatten(const std::vector<Record>& output) {
  std::string text;
  for (const auto& record : output) {
    text += record.key + "\t" + record.value + "\n";
  }
  return text;
}

TEST(MultiprocJob, OutputIsByteIdenticalToInProcess) {
  const JobResult baseline = run_job(word_count_spec(), word_count_input());
  for (const std::size_t workers : {1u, 2u, 4u}) {
    JobSpec spec = word_count_spec();
    spec.conf.execution_mode = ExecutionMode::kMultiProcess;
    spec.conf.num_workers = workers;
    const JobResult result = run_job(spec, word_count_input());
    EXPECT_EQ(flatten(result.output), flatten(baseline.output))
        << "workers=" << workers;
    EXPECT_EQ(result.counters.map_input_records,
              baseline.counters.map_input_records);
    EXPECT_EQ(result.counters.map_output_records,
              baseline.counters.map_output_records);
    EXPECT_EQ(result.counters.combine_output_records,
              baseline.counters.combine_output_records);
    EXPECT_EQ(result.counters.reduce_input_groups,
              baseline.counters.reduce_input_groups);
    EXPECT_EQ(result.counters.reduce_output_records,
              baseline.counters.reduce_output_records);
    EXPECT_EQ(result.counters.shuffle_bytes, baseline.counters.shuffle_bytes);
  }
}

TEST(MultiprocJob, NoCombinerParityHolds) {
  JobSpec in_proc = word_count_spec();
  in_proc.conf.enable_combiner = false;
  const JobResult baseline = run_job(in_proc, word_count_input());
  JobSpec multi = word_count_spec();
  multi.conf.enable_combiner = false;
  multi.conf.execution_mode = ExecutionMode::kMultiProcess;
  multi.conf.num_workers = 2;
  const JobResult result = run_job(multi, word_count_input());
  EXPECT_EQ(flatten(result.output), flatten(baseline.output));
  EXPECT_EQ(result.counters.combine_input_records, 0u);
}

TEST(MultiprocJob, PlacementIsDeterministicAcrossModesAndSeeds) {
  JobSpec in_proc = word_count_spec();
  in_proc.conf.placement_seed = 42;
  const JobResult a = run_job(in_proc, word_count_input());

  JobSpec multi = word_count_spec();
  multi.conf.placement_seed = 42;
  multi.conf.execution_mode = ExecutionMode::kMultiProcess;
  const JobResult b = run_job(multi, word_count_input());

  // Same seed => the same task -> worker plan, whichever mode executed it.
  ASSERT_FALSE(a.map_task_workers.empty());
  EXPECT_EQ(a.map_task_workers, b.map_task_workers);
  EXPECT_EQ(a.reduce_task_workers, b.reduce_task_workers);
  // And the plan is what assign_tasks says it should be.
  EXPECT_EQ(a.map_task_workers,
            assign_tasks(a.num_map_tasks, in_proc.conf.num_workers, 42));
  EXPECT_EQ(a.reduce_task_workers,
            assign_tasks(a.num_reduce_tasks, in_proc.conf.num_workers, 43));

  JobSpec reseeded = word_count_spec();
  reseeded.conf.placement_seed = 7;
  const JobResult c = run_job(reseeded, word_count_input());
  // A different seed permutes the workers differently (with 2 workers the
  // two permutations collide often, so compare against the oracle).
  EXPECT_EQ(c.map_task_workers,
            assign_tasks(c.num_map_tasks, reseeded.conf.num_workers, 7));
}

TEST(MultiprocJob, WorkerKillMidMapRecovers) {
  const JobResult baseline = run_job(word_count_spec(), word_count_input());

  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("seed=3;worker.kill:nth=2:max=1"),
                         &registry);
  JobSpec spec = word_count_spec();
  spec.conf.execution_mode = ExecutionMode::kMultiProcess;
  spec.conf.num_workers = 2;
  spec.conf.worker_spares = 1;
  spec.conf.max_task_attempts = 3;
  spec.metrics = &registry;
  spec.faults = &injector;

  const JobResult result = run_job(spec, word_count_input());
  EXPECT_EQ(flatten(result.output), flatten(baseline.output));
  EXPECT_EQ(injector.fired("worker.kill"), 1u);
  // Not asserting failed_task_attempts == 1: in principle a reply can
  // already be in the socket buffer when SIGKILL lands, in which case the
  // attempt succeeds and only the gather re-executes the task.
  EXPECT_GE(registry.gauge_value("worker.killed"), 1);
}

TEST(MultiprocJob, WorkerKillMidReduceRecovers) {
  const JobResult baseline = run_job(word_count_spec(), word_count_input());

  // 12 input records / split_records=2 => 6 map tasks; nth=8 fires on the
  // second worker.kill check of the reduce phase.
  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("seed=3;worker.kill:nth=8:max=1"),
                         &registry);
  JobSpec spec = word_count_spec();
  spec.conf.execution_mode = ExecutionMode::kMultiProcess;
  spec.conf.num_workers = 2;
  spec.conf.worker_spares = 1;
  spec.conf.max_task_attempts = 3;
  spec.metrics = &registry;
  spec.faults = &injector;

  const JobResult result = run_job(spec, word_count_input());
  EXPECT_EQ(flatten(result.output), flatten(baseline.output));
  EXPECT_EQ(injector.fired("worker.kill"), 1u);
  EXPECT_GE(registry.gauge_value("worker.killed"), 1);
}

TEST(MultiprocJob, WorkerTaskFailureSurfacesAsTypedError) {
  JobSpec spec = word_count_spec();
  spec.reducer_factory = [] { return std::make_unique<ThrowingReducer>(); };
  spec.conf.execution_mode = ExecutionMode::kMultiProcess;
  spec.conf.num_workers = 2;
  // One attempt: the worker-side failure must come back as the job error
  // (and the worker must stay alive to report it, not crash).
  spec.conf.max_task_attempts = 1;
  EXPECT_THROW(run_job(spec, word_count_input()), IoError);
}

TEST(MultiprocJob, EmptyInputStillRuns) {
  JobSpec spec = word_count_spec();
  spec.conf.execution_mode = ExecutionMode::kMultiProcess;
  const JobResult result = run_job(spec, {});
  EXPECT_TRUE(result.output.empty());
  EXPECT_EQ(result.num_map_tasks, 1u);
}

TEST(MultiprocJob, ExecModeWorkerBinaryMatchesInProcess) {
#ifndef DASC_WORKER_BIN
  GTEST_SKIP() << "dasc_worker binary path not configured";
#else
  // The registered "wordcount" job must agree with an in-process run of
  // the same factories (both sides use the remote_runner registry).
  WorkerJob registered = make_registered_worker_job("wordcount");
  JobSpec in_proc;
  in_proc.conf.num_reducers = 3;
  in_proc.conf.split_records = 2;
  in_proc.conf.job_name = "wordcount";
  in_proc.mapper_factory = registered.mapper_factory;
  in_proc.reducer_factory = registered.reducer_factory;
  in_proc.combiner_factory = registered.combiner_factory;
  const JobResult baseline = run_job(in_proc, word_count_input());

  JobSpec exec_spec = in_proc;
  exec_spec.conf.execution_mode = ExecutionMode::kMultiProcess;
  exec_spec.conf.num_workers = 2;
  exec_spec.conf.worker_binary = DASC_WORKER_BIN;
  const JobResult result = run_job(exec_spec, word_count_input());
  EXPECT_EQ(flatten(result.output), flatten(baseline.output));
#endif
}

TEST(MultiprocJob, UnknownRegisteredJobIsInvalidArgument) {
  EXPECT_THROW(make_registered_worker_job("no-such-job"), InvalidArgument);
}

// --- Worker-to-worker shuffle (DESIGN.md section 14) ---

JobSpec w2w_spec(std::size_t workers, std::size_t spill_budget) {
  JobSpec spec = word_count_spec();
  spec.conf.execution_mode = ExecutionMode::kMultiProcess;
  spec.conf.shuffle_mode = ShuffleMode::kWorkerToWorker;
  spec.conf.num_workers = workers;
  spec.conf.spill_budget_bytes = spill_budget;
  return spec;
}

TEST(MultiprocW2W, OutputIsByteIdenticalAcrossWorkersAndBudgets) {
  const JobResult baseline = run_job(word_count_spec(), word_count_input());
  for (const std::size_t workers : {1u, 2u, 4u}) {
    for (const std::size_t budget : {0u, 1u, 64u * 1024}) {
      const JobResult result =
          run_job(w2w_spec(workers, budget), word_count_input());
      EXPECT_EQ(flatten(result.output), flatten(baseline.output))
          << "workers=" << workers << " budget=" << budget;
      EXPECT_EQ(result.counters.reduce_input_groups,
                baseline.counters.reduce_input_groups)
          << "workers=" << workers << " budget=" << budget;
      EXPECT_EQ(result.counters.shuffle_bytes,
                baseline.counters.shuffle_bytes)
          << "workers=" << workers << " budget=" << budget;
    }
  }
}

TEST(MultiprocW2W, MatchesRelayModeByteForByte) {
  JobSpec relay = word_count_spec();
  relay.conf.execution_mode = ExecutionMode::kMultiProcess;
  relay.conf.num_workers = 2;
  const JobResult relayed = run_job(relay, word_count_input());
  const JobResult pulled = run_job(w2w_spec(2, 0), word_count_input());
  EXPECT_EQ(flatten(pulled.output), flatten(relayed.output));
  EXPECT_EQ(pulled.counters.shuffle_bytes, relayed.counters.shuffle_bytes);
}

TEST(MultiprocW2W, ShuffleAndSpillBytesAreWorkerCountInvariant) {
  // The shuffle volume is derived from the record stream (key + value + 2
  // per record) and every pulled record spools through the same budget, so
  // neither number may depend on how many workers the records crossed.
  std::vector<std::uint64_t> shuffle_bytes;
  std::vector<std::int64_t> spill_written;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    MetricsRegistry registry;
    JobSpec spec = w2w_spec(workers, /*spill_budget=*/1);
    spec.metrics = &registry;
    const JobResult result = run_job(spec, word_count_input());
    shuffle_bytes.push_back(result.counters.shuffle_bytes);
    spill_written.push_back(registry.gauge_value("spill.bytes_written"));
  }
  EXPECT_GT(shuffle_bytes[0], 0u);
  EXPECT_EQ(shuffle_bytes[0], shuffle_bytes[1]);
  EXPECT_EQ(shuffle_bytes[0], shuffle_bytes[2]);
  EXPECT_GT(spill_written[0], 0);
  EXPECT_EQ(spill_written[0], spill_written[1]);
  EXPECT_EQ(spill_written[0], spill_written[2]);
}

TEST(MultiprocW2W, RelaysNoShuffleBytesThroughTheSupervisor) {
  // Relay mode funnels every shuffle byte through the supervisor
  // (shuffle.relay_bytes); worker-to-worker must move the same records
  // while relaying none, bounding reducer residency via the spool instead.
  MetricsRegistry relay_registry;
  JobSpec relay = word_count_spec();
  relay.conf.execution_mode = ExecutionMode::kMultiProcess;
  relay.conf.num_workers = 2;
  relay.metrics = &relay_registry;
  run_job(relay, word_count_input());
  EXPECT_GT(relay_registry.gauge_value("shuffle.relay_bytes"), 0);

  MetricsRegistry w2w_registry;
  JobSpec pulled = w2w_spec(2, /*spill_budget=*/1);
  pulled.metrics = &w2w_registry;
  run_job(pulled, word_count_input());
  EXPECT_EQ(w2w_registry.gauge_value("shuffle.relay_bytes"), 0);
  EXPECT_GE(w2w_registry.gauge_value("spill.bytes_written"), 1);
  EXPECT_GE(w2w_registry.gauge_value("spill.pages"), 1);
}

TEST(MultiprocW2W, WorkerKillMidMapRecovers) {
  const JobResult baseline = run_job(word_count_spec(), word_count_input());
  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("seed=3;worker.kill:nth=2:max=1"),
                         &registry);
  JobSpec spec = w2w_spec(2, 0);
  spec.conf.worker_spares = 1;
  spec.conf.max_task_attempts = 3;
  spec.metrics = &registry;
  spec.faults = &injector;
  const JobResult result = run_job(spec, word_count_input());
  EXPECT_EQ(flatten(result.output), flatten(baseline.output));
  EXPECT_EQ(injector.fired("worker.kill"), 1u);
  EXPECT_GE(registry.gauge_value("worker.killed"), 1);
}

TEST(MultiprocW2W, WorkerKillMidReduceReexecutesLostMapOutputs) {
  const JobResult baseline = run_job(word_count_spec(), word_count_input());
  // 6 map dispatches, then reduce pulls: nth=8 SIGKILLs a reducer right
  // after its kReducePull ships. The retry lands on a live worker whose
  // partition map still names the dead slot as a map-output owner, so
  // recovery must go through kPullFailed -> inline map re-execution ->
  // kPullResume — and the labels must not show any of it.
  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("seed=3;worker.kill:nth=8:max=1"),
                         &registry);
  JobSpec spec = w2w_spec(2, /*spill_budget=*/1);
  spec.conf.worker_spares = 1;
  spec.conf.max_task_attempts = 3;
  spec.metrics = &registry;
  spec.faults = &injector;
  const JobResult result = run_job(spec, word_count_input());
  EXPECT_EQ(flatten(result.output), flatten(baseline.output));
  EXPECT_EQ(injector.fired("worker.kill"), 1u);
  EXPECT_GE(registry.gauge_value("worker.killed"), 1);
  EXPECT_GE(registry.gauge_value("worker.map_reexecutions"), 1);
}

TEST(MultiprocW2W, WorkerTaskFailureSurfacesAsTypedError) {
  JobSpec spec = w2w_spec(2, 0);
  spec.reducer_factory = [] { return std::make_unique<ThrowingReducer>(); };
  spec.conf.max_task_attempts = 1;
  EXPECT_THROW(run_job(spec, word_count_input()), IoError);
}

TEST(MultiprocW2W, EmptyInputStillRuns) {
  const JobResult result = run_job(w2w_spec(2, 0), {});
  EXPECT_TRUE(result.output.empty());
  EXPECT_EQ(result.num_map_tasks, 1u);
}

TEST(MultiprocW2W, ExecModeWorkerBinaryMatchesInProcess) {
#ifndef DASC_WORKER_BIN
  GTEST_SKIP() << "dasc_worker binary path not configured";
#else
  WorkerJob registered = make_registered_worker_job("wordcount");
  JobSpec in_proc;
  in_proc.conf.num_reducers = 3;
  in_proc.conf.split_records = 2;
  in_proc.conf.job_name = "wordcount";
  in_proc.mapper_factory = registered.mapper_factory;
  in_proc.reducer_factory = registered.reducer_factory;
  in_proc.combiner_factory = registered.combiner_factory;
  const JobResult baseline = run_job(in_proc, word_count_input());

  // Exec'd workers learn their data-plane address and fault plan from
  // kJobSetup, so pulls work across a real exec boundary too.
  JobSpec exec_spec = in_proc;
  exec_spec.conf.execution_mode = ExecutionMode::kMultiProcess;
  exec_spec.conf.shuffle_mode = ShuffleMode::kWorkerToWorker;
  exec_spec.conf.num_workers = 2;
  exec_spec.conf.spill_budget_bytes = 1;
  exec_spec.conf.worker_binary = DASC_WORKER_BIN;
  const JobResult result = run_job(exec_spec, word_count_input());
  EXPECT_EQ(flatten(result.output), flatten(baseline.output));
#endif
}

// --- Cross-process speculative execution (DESIGN.md section 15) ---

TEST(MultiprocSpeculation, EveryCellKeepsParityAndCommitsEachTaskOnce) {
  const JobResult baseline = run_job(word_count_spec(), word_count_input());

  // One seeded plan for every cell: a worker dies mid-map (the retry path
  // and speculation must coexist), and the first reduce attempt stalls for
  // 300ms — far past speculative_slowdown x the median — so the spec-on
  // cells must launch a backup on a different worker and let commit-once
  // arbitration pick a winner. The property under test: whatever raced,
  // labels and counters are exactly the fault-free in-process run's (a
  // double commit would inflate reduce_output_records; a lost commit would
  // fail the job or drop records).
  const char* kPlan =
      "seed=5;worker.kill:nth=2:max=1;"
      "reduce.task:nth=1:max=1:kind=stall:stall_ms=300";
  for (const std::size_t workers : {1u, 2u, 4u}) {
    for (const ShuffleMode mode :
         {ShuffleMode::kRelay, ShuffleMode::kWorkerToWorker}) {
      for (const bool speculate : {false, true}) {
        SCOPED_TRACE("workers=" + std::to_string(workers) + " shuffle=" +
                     to_string(mode) + (speculate ? " spec=on" : " spec=off"));
        MetricsRegistry registry;
        FaultInjector injector(FaultPlan::parse(kPlan), &registry);
        JobSpec spec = word_count_spec();
        spec.conf.execution_mode = ExecutionMode::kMultiProcess;
        spec.conf.shuffle_mode = mode;
        spec.conf.num_workers = workers;
        spec.conf.worker_spares = 1;
        spec.conf.max_task_attempts = 3;
        // The straggler monitor needs the non-stalled tasks to commit
        // while the stalled one sleeps, so the phase pool must not
        // serialize behind it (single-CPU hosts default to one thread).
        spec.conf.physical_threads = 4;
        if (mode == ShuffleMode::kWorkerToWorker) {
          spec.conf.spill_budget_bytes = 1;  // pulls spool through disk
        }
        if (speculate) {
          spec.conf.enable_speculation = true;
          spec.conf.speculative_slowdown = 1.5;
          spec.conf.speculative_min_ms = 1.0;
        }
        spec.metrics = &registry;
        spec.faults = &injector;

        const JobResult result = run_job(spec, word_count_input());
        EXPECT_EQ(flatten(result.output), flatten(baseline.output));
        EXPECT_EQ(result.counters.map_input_records,
                  baseline.counters.map_input_records);
        EXPECT_EQ(result.counters.map_output_records,
                  baseline.counters.map_output_records);
        EXPECT_EQ(result.counters.reduce_input_groups,
                  baseline.counters.reduce_input_groups);
        EXPECT_EQ(result.counters.reduce_output_records,
                  baseline.counters.reduce_output_records);
        EXPECT_EQ(result.counters.shuffle_bytes,
                  baseline.counters.shuffle_bytes);

        // Every fire the plan promises happened, exactly once, and the
        // injector's own view agrees with the metrics view (remote fires
        // are absorbed into both). Retry counts for worker.kill are
        // deliberately not asserted: a reply can already be in the socket
        // buffer when SIGKILL lands, in which case no attempt fails.
        EXPECT_EQ(injector.fired("worker.kill"), 1u);
        EXPECT_EQ(registry.counter_value("fault.injected.worker.kill"), 1);
        EXPECT_EQ(injector.fired("reduce.task"), 1u);
        EXPECT_EQ(registry.counter_value("fault.injected.reduce.task"), 1);
        if (speculate) {
          EXPECT_GE(registry.gauge_value("retry.speculative_launches"), 1);
        }
      }
    }
  }
}

TEST(MultiprocSpeculation, TaskCancelDropsOutputAndSweepsOnlyOwnSpools) {
  // Drive one worker's serve loop directly over a socketpair and play the
  // supervisor's side of the cancel protocol. The regression under test:
  // a losing attempt's spool files are swept on kTaskCancel, while the
  // winner's (a different pid's) spool files in the same spill dir
  // survive — the sweep must key on the cancelled worker's own pid.
  namespace fs = std::filesystem;
  const auto [sup_fd, worker_fd] = ipc::make_socketpair();
  ipc::Transport supervisor(sup_fd);
  ipc::Transport worker_end(worker_fd);

  WorkerJob job;
  job.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  job.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  const WorkerOptions options;  // no heartbeat, no data plane
  std::thread worker([&] { serve_worker_loop(worker_end, job, options); });

  // A committed map task retains its output for later fetches.
  {
    ipc::WireWriter writer;
    writer.u64(0);
    writer.record("r0", "alpha beta");
    supervisor.send({ipc::MessageType::kMapAssign, writer.take()});
    const auto reply = supervisor.recv();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, ipc::MessageType::kMapDone);
  }

  // Plant spool files: the serve loop runs in this process, so files named
  // with our pid are the losing worker's; the winner is "another worker",
  // simulated by a different pid in the filename.
  const fs::path dir =
      fs::temp_directory_path() /
      ("dasc-cancel-test-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const fs::path loser =
      dir / ("dasc-spool-" + std::to_string(::getpid()) + "-999.spl");
  const fs::path winner =
      dir / ("dasc-spool-" + std::to_string(::getpid() + 1) + "-999.spl");
  std::ofstream(loser) << "losing attempt's page";
  std::ofstream(winner) << "winning attempt's page";
  ASSERT_TRUE(fs::exists(loser));
  ASSERT_TRUE(fs::exists(winner));

  const auto cancel = [&](std::uint64_t expect_dropped,
                          std::uint64_t expect_swept) {
    ipc::WireWriter writer;
    writer.u64(0);  // kind: map
    writer.u64(0);  // task
    writer.bytes(dir.string());
    supervisor.send({ipc::MessageType::kTaskCancel, writer.take()});
    const auto reply = supervisor.recv();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, ipc::MessageType::kTaskCancelled);
    ipc::WireReader reader(reply->payload);
    EXPECT_EQ(reader.u64(), 0u);  // task echoed
    EXPECT_EQ(reader.u64(), expect_dropped);
    EXPECT_EQ(reader.u64(), expect_swept);
  };

  cancel(/*expect_dropped=*/1, /*expect_swept=*/1);
  EXPECT_FALSE(fs::exists(loser));   // the loser's spool is gone
  EXPECT_TRUE(fs::exists(winner));   // the winner's survives

  // The dropped output is unreachable: a fetch for it fails typed instead
  // of serving a side effect the job discarded.
  {
    ipc::WireWriter writer;
    writer.u64(0);
    supervisor.send({ipc::MessageType::kFetch, writer.take()});
    const auto reply = supervisor.recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, ipc::MessageType::kTaskError);
  }

  // Cancel is idempotent: nothing left to drop or sweep.
  cancel(/*expect_dropped=*/0, /*expect_swept=*/0);

  supervisor.send({ipc::MessageType::kShutdown, {}});
  worker.join();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dasc::mapreduce
