#include "mapreduce/virtual_cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dasc::mapreduce {
namespace {

TEST(Schedule, EmptyTaskListHasZeroMakespan) {
  const auto result = schedule_lpt({}, 4, 2);
  EXPECT_DOUBLE_EQ(result.makespan_seconds, 0.0);
  EXPECT_TRUE(result.placements.empty());
}

TEST(Schedule, SingleSlotSerializesEverything) {
  const std::vector<double> tasks{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(makespan_lpt(tasks, 1, 1), 6.0);
}

TEST(Schedule, PerfectlyParallelWhenSlotsMatchTasks) {
  const std::vector<double> tasks{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(makespan_lpt(tasks, 2, 2), 2.0);
}

TEST(Schedule, LptPacksUnevenTasks) {
  // Tasks 5, 3, 3, 2, 2 onto 2 slots: LPT gives {5, 2} and {3, 3, 2} -> 8.
  const std::vector<double> tasks{5.0, 3.0, 3.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(makespan_lpt(tasks, 2, 1), 8.0);
}

TEST(Schedule, MakespanAtLeastLowerBounds) {
  dasc::Rng rng(101);
  std::vector<double> tasks(100);
  for (double& t : tasks) t = rng.uniform(0.1, 3.0);
  const double total = std::accumulate(tasks.begin(), tasks.end(), 0.0);
  const double longest = *std::max_element(tasks.begin(), tasks.end());
  const double makespan = makespan_lpt(tasks, 4, 2);
  EXPECT_GE(makespan, total / 8.0 - 1e-12);  // work conservation
  EXPECT_GE(makespan, longest - 1e-12);      // critical path
  // LPT is a 4/3-approximation of optimum >= max(bounds).
  EXPECT_LE(makespan, std::max(total / 8.0, longest) * 4.0 / 3.0 + longest);
}

TEST(Schedule, MoreNodesNeverSlower) {
  dasc::Rng rng(102);
  std::vector<double> tasks(200);
  for (double& t : tasks) t = rng.uniform(0.05, 1.0);
  double prev = makespan_lpt(tasks, 1, 2);
  for (std::size_t nodes : {2u, 4u, 8u, 16u}) {
    const double current = makespan_lpt(tasks, nodes, 2);
    EXPECT_LE(current, prev + 1e-9);
    prev = current;
  }
}

TEST(Schedule, NearLinearSpeedupWithManySmallTasks) {
  // The elasticity property behind Table 3: abundant uniform tasks scale
  // nearly linearly with node count.
  std::vector<double> tasks(1024, 1.0);
  const double t16 = makespan_lpt(tasks, 16, 1);
  const double t64 = makespan_lpt(tasks, 64, 1);
  EXPECT_NEAR(t16 / t64, 4.0, 0.01);
}

TEST(Schedule, PlacementsAreConsistent) {
  dasc::Rng rng(103);
  std::vector<double> tasks(50);
  for (double& t : tasks) t = rng.uniform(0.1, 2.0);
  const auto result = schedule_lpt(tasks, 3, 2);
  ASSERT_EQ(result.placements.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& p = result.placements[i];
    EXPECT_EQ(p.task, i);
    EXPECT_LT(p.node, 3u);
    EXPECT_LT(p.slot, 2u);
    EXPECT_NEAR(p.end_seconds - p.start_seconds, tasks[i], 1e-12);
    EXPECT_LE(p.end_seconds, result.makespan_seconds + 1e-12);
  }
  // Busy time adds up to total work.
  const double busy = std::accumulate(result.node_busy_seconds.begin(),
                                      result.node_busy_seconds.end(), 0.0);
  EXPECT_NEAR(busy, std::accumulate(tasks.begin(), tasks.end(), 0.0), 1e-9);
}

TEST(Schedule, NoOverlapWithinSlot) {
  dasc::Rng rng(104);
  std::vector<double> tasks(40);
  for (double& t : tasks) t = rng.uniform(0.1, 1.0);
  const auto result = schedule_lpt(tasks, 2, 2);
  // Group placements by (node, slot) and check intervals don't overlap.
  for (std::size_t node = 0; node < 2; ++node) {
    for (std::size_t slot = 0; slot < 2; ++slot) {
      std::vector<std::pair<double, double>> intervals;
      for (const auto& p : result.placements) {
        if (p.node == node && p.slot == slot) {
          intervals.emplace_back(p.start_seconds, p.end_seconds);
        }
      }
      std::sort(intervals.begin(), intervals.end());
      for (std::size_t i = 1; i < intervals.size(); ++i) {
        EXPECT_GE(intervals[i].first, intervals[i - 1].second - 1e-12);
      }
    }
  }
}

TEST(Schedule, RejectsBadInputs) {
  EXPECT_THROW(schedule_lpt({1.0}, 0, 1), dasc::InvalidArgument);
  EXPECT_THROW(schedule_lpt({1.0}, 1, 0), dasc::InvalidArgument);
  EXPECT_THROW(schedule_lpt({-1.0}, 1, 1), dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::mapreduce
