#include "baselines/nystrom.hpp"

#include <gtest/gtest.h>

#include "clustering/metrics.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "linalg/dense_matrix.hpp"

namespace dasc::baselines {
namespace {

TEST(NystromAutoLandmarks, RuleAndClamping) {
  EXPECT_EQ(nystrom_auto_landmarks(10000), 400u);  // 4 * 100
  EXPECT_EQ(nystrom_auto_landmarks(4), 4u);        // capped at n
  EXPECT_EQ(nystrom_auto_landmarks(25), 20u);
}

TEST(Nystrom, RecoversSeparatedBlobs) {
  dasc::Rng data_rng(511);
  data::MixtureParams mix;
  mix.n = 300;
  mix.dim = 8;
  mix.k = 3;
  mix.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);

  NystromParams params;
  params.k = 3;
  dasc::Rng rng(512);
  const NystromResult result = nystrom_cluster(points, params, rng);
  EXPECT_GT(clustering::clustering_accuracy(result.labels, points.labels()),
            0.9);
}

TEST(Nystrom, KernelBytesScaleWithLandmarks) {
  dasc::Rng data_rng(513);
  const data::PointSet points = data::make_uniform(200, 4, data_rng);
  NystromParams params;
  params.k = 2;
  params.landmarks = 20;
  dasc::Rng rng(514);
  const NystromResult small = nystrom_cluster(points, params, rng);
  params.landmarks = 80;
  dasc::Rng rng2(515);
  const NystromResult large = nystrom_cluster(points, params, rng2);
  EXPECT_LT(small.kernel_bytes, large.kernel_bytes);
  EXPECT_EQ(small.kernel_bytes, linalg::gram_entry_bytes(200u * 20u + 20u * 20u));
}

TEST(Nystrom, MemoryBelowFullGramForModestLandmarks) {
  dasc::Rng data_rng(516);
  const data::PointSet points = data::make_uniform(400, 4, data_rng);
  NystromParams params;
  params.k = 4;
  dasc::Rng rng(517);
  const NystromResult result = nystrom_cluster(points, params, rng);
  EXPECT_LT(result.kernel_bytes, linalg::gram_entry_bytes(400u * 400u));
}

TEST(Nystrom, LandmarksClampedToDatasetAndK) {
  dasc::Rng data_rng(518);
  const data::PointSet points = data::make_uniform(30, 3, data_rng);
  NystromParams params;
  params.k = 5;
  params.landmarks = 1000;
  dasc::Rng rng(519);
  const NystromResult result = nystrom_cluster(points, params, rng);
  EXPECT_EQ(result.landmarks, 30u);

  params.landmarks = 2;  // below k: must be raised to k
  dasc::Rng rng2(520);
  const NystromResult raised = nystrom_cluster(points, params, rng2);
  EXPECT_GE(raised.landmarks, 5u);
}

TEST(Nystrom, LabelsValid) {
  dasc::Rng data_rng(521);
  const data::PointSet points = data::make_uniform(100, 5, data_rng);
  NystromParams params;
  params.k = 4;
  dasc::Rng rng(522);
  const NystromResult result = nystrom_cluster(points, params, rng);
  ASSERT_EQ(result.labels.size(), 100u);
  for (int label : result.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(Nystrom, KOneAndBadInputs) {
  dasc::Rng data_rng(523);
  const data::PointSet points = data::make_uniform(40, 3, data_rng);
  NystromParams params;
  params.k = 1;
  dasc::Rng rng(524);
  const NystromResult result = nystrom_cluster(points, params, rng);
  for (int label : result.labels) EXPECT_EQ(label, 0);

  params.k = 0;
  EXPECT_THROW(nystrom_cluster(points, params, rng), dasc::InvalidArgument);
}

TEST(Nystrom, FullLandmarksApproachesExactSpectral) {
  // With m = n, Nystrom is (numerically) full spectral clustering; it must
  // nail well-separated blobs.
  dasc::Rng data_rng(525);
  data::MixtureParams mix;
  mix.n = 120;
  mix.dim = 6;
  mix.k = 2;
  mix.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);
  NystromParams params;
  params.k = 2;
  params.landmarks = 120;
  dasc::Rng rng(526);
  const NystromResult result = nystrom_cluster(points, params, rng);
  EXPECT_GT(clustering::clustering_accuracy(result.labels, points.labels()),
            0.97);
}

}  // namespace
}  // namespace dasc::baselines
