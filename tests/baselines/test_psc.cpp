#include "baselines/psc.hpp"

#include <gtest/gtest.h>

#include "clustering/metrics.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "linalg/dense_matrix.hpp"

namespace dasc::baselines {
namespace {

TEST(PscAutoNeighbours, RuleAndClamping) {
  EXPECT_EQ(psc_auto_neighbours(1024), 20u);  // 2 * 10
  EXPECT_EQ(psc_auto_neighbours(8), 7u);      // capped at n - 1
  EXPECT_THROW(psc_auto_neighbours(1), dasc::InvalidArgument);
}

TEST(Psc, RecoversSeparatedBlobs) {
  dasc::Rng data_rng(411);
  data::MixtureParams mix;
  mix.n = 300;
  mix.dim = 8;
  mix.k = 3;
  mix.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);

  PscParams params;
  params.k = 3;
  dasc::Rng rng(412);
  const PscResult result = psc_cluster(points, params, rng);
  EXPECT_GT(clustering::clustering_accuracy(result.labels, points.labels()),
            0.95);
}

TEST(Psc, SeparatesConcentricRings) {
  dasc::Rng data_rng(413);
  const data::PointSet points = data::make_two_rings(200, 0.004, data_rng);
  PscParams params;
  params.k = 2;
  params.t = 10;
  params.sigma = 0.05;
  dasc::Rng rng(414);
  const PscResult result = psc_cluster(points, params, rng);
  EXPECT_GT(clustering::clustering_accuracy(result.labels, points.labels()),
            0.95);
}

TEST(Psc, SparseMemorySmallerThanDense) {
  dasc::Rng data_rng(415);
  const data::PointSet points = data::make_uniform(400, 6, data_rng);
  PscParams params;
  params.k = 4;
  dasc::Rng rng(416);
  const PscResult result = psc_cluster(points, params, rng);
  const std::size_t dense_bytes = linalg::gram_entry_bytes(400u * 400u);
  EXPECT_LT(result.affinity_bytes, dense_bytes);
  EXPECT_GT(result.affinity_bytes, 0u);
}

TEST(Psc, LabelsValidAndAllClustersRepresented) {
  dasc::Rng data_rng(417);
  data::MixtureParams mix;
  mix.n = 200;
  mix.dim = 6;
  mix.k = 4;
  mix.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);
  PscParams params;
  params.k = 4;
  dasc::Rng rng(418);
  const PscResult result = psc_cluster(points, params, rng);
  std::vector<int> counts(4, 0);
  for (int label : result.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 4);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(Psc, ExplicitNeighbourCountRespected) {
  dasc::Rng data_rng(419);
  const data::PointSet points = data::make_uniform(100, 4, data_rng);
  PscParams params;
  params.k = 2;
  params.t = 7;
  dasc::Rng rng(420);
  const PscResult result = psc_cluster(points, params, rng);
  EXPECT_EQ(result.neighbours, 7u);
}

TEST(Psc, KOneAndBadInputs) {
  dasc::Rng data_rng(421);
  const data::PointSet points = data::make_uniform(50, 3, data_rng);
  PscParams params;
  params.k = 1;
  dasc::Rng rng(422);
  const PscResult result = psc_cluster(points, params, rng);
  for (int label : result.labels) EXPECT_EQ(label, 0);

  params.k = 0;
  EXPECT_THROW(psc_cluster(points, params, rng), dasc::InvalidArgument);
  const data::PointSet single(1, 3);
  params.k = 1;
  EXPECT_THROW(psc_cluster(single, params, rng), dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::baselines
