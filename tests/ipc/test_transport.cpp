// Transport framing tests: round trips, every malformed-frame class as a
// typed dasc::IoError, listener accept/connect, and the supervisor's spool
// sweep (DESIGN.md section 13).
#include "ipc/transport.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/spool.hpp"
#include "ipc/message.hpp"
#include "ipc/worker_supervisor.hpp"

namespace dasc::ipc {
namespace {

/// A connected transport pair over a socketpair.
struct Pair {
  Pair() {
    const auto [a, b] = make_socketpair();
    left = std::make_unique<Transport>(a);
    right = std::make_unique<Transport>(b);
  }
  std::unique_ptr<Transport> left;
  std::unique_ptr<Transport> right;
};

/// Write raw bytes to the peer's socket, bypassing Message framing.
void send_raw(Transport& transport, const std::string& bytes) {
  ASSERT_EQ(::write(transport.fd(), bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
}

TEST(Transport, RoundTripsMessages) {
  Pair pair;
  Message out;
  out.type = MessageType::kMapAssign;
  WireWriter writer;
  writer.u64(7);
  writer.record("key", "value");
  writer.record("", "");  // empty key/value frames fine
  out.payload = writer.take();
  pair.left->send(out);

  const auto in = pair.right->recv();
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(in->type, MessageType::kMapAssign);
  WireReader reader(in->payload);
  EXPECT_EQ(reader.u64(), 7u);
  const auto [key, value] = reader.record();
  EXPECT_EQ(key, "key");
  EXPECT_EQ(value, "value");
  const auto [key2, value2] = reader.record();
  EXPECT_TRUE(key2.empty());
  EXPECT_TRUE(value2.empty());
  EXPECT_TRUE(reader.done());
}

TEST(Transport, EmptyPayloadRoundTrips) {
  Pair pair;
  pair.left->send({MessageType::kHeartbeat, {}});
  const auto in = pair.right->recv();
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(in->type, MessageType::kHeartbeat);
  EXPECT_TRUE(in->payload.empty());
}

TEST(Transport, CleanEofAtFrameBoundaryIsNullopt) {
  Pair pair;
  pair.left->send({MessageType::kShutdown, {}});
  pair.left->close();
  EXPECT_TRUE(pair.right->recv().has_value());  // the shutdown frame
  EXPECT_FALSE(pair.right->recv().has_value());  // then clean EOF
}

TEST(Transport, TruncatedHeaderIsIoError) {
  Pair pair;
  send_raw(*pair.left, std::string(kFrameHeaderBytes / 2, 'x'));
  pair.left->close();
  EXPECT_THROW(pair.right->recv(), IoError);
}

TEST(Transport, TruncatedPayloadIsIoError) {
  Pair pair;
  const std::string frame =
      encode_frame({MessageType::kFetchData, "some payload bytes"});
  send_raw(*pair.left, frame.substr(0, frame.size() - 4));
  pair.left->close();
  EXPECT_THROW(pair.right->recv(), IoError);
}

TEST(Transport, BadMagicIsIoError) {
  Pair pair;
  std::string frame = encode_frame({MessageType::kHello, "payload"});
  frame[0] = 'X';
  send_raw(*pair.left, frame);
  EXPECT_THROW(pair.right->recv(), IoError);
}

TEST(Transport, CrcTamperIsIoError) {
  Pair pair;
  std::string frame = encode_frame({MessageType::kFetchData, "records..."});
  frame[kFrameHeaderBytes] =
      static_cast<char>(frame[kFrameHeaderBytes] ^ 0x1);  // flip payload byte
  send_raw(*pair.left, frame);
  EXPECT_THROW(pair.right->recv(), IoError);
}

TEST(Transport, OversizedDeclaredLengthIsIoError) {
  Pair pair;
  // Hand-build a header that declares a payload beyond kMaxPayloadBytes;
  // the receiver must reject it from the header alone (never allocating).
  std::string header(kFrameHeaderBytes, '\0');
  std::memcpy(header.data(), kFrameMagic.data(), 4);
  const std::uint32_t type = 5;
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxPayloadBytes) + 1;
  std::memcpy(header.data() + 4, &type, 4);
  std::memcpy(header.data() + 8, &huge, 4);
  send_raw(*pair.left, header);
  EXPECT_THROW(pair.right->recv(), IoError);
}

TEST(Transport, OversizedSendIsInvalidArgument) {
  Message message;
  message.type = MessageType::kFetchData;
  EXPECT_THROW(
      {
        // encode_frame validates before any socket is involved.
        message.payload.resize(kMaxPayloadBytes + 1);
        encode_frame(message);
      },
      InvalidArgument);
}

TEST(Transport, CountsTrafficInMetrics) {
  MetricsRegistry registry;
  const auto [a, b] = make_socketpair();
  Transport left(a, &registry);
  Transport right(b, &registry);
  left.send({MessageType::kHello, "payload"});
  ASSERT_TRUE(right.recv().has_value());
  EXPECT_EQ(registry.counter_value("ipc.messages_sent"), 1);
  EXPECT_EQ(registry.counter_value("ipc.messages_received"), 1);
  EXPECT_EQ(registry.gauge_value("ipc.bytes_sent"),
            static_cast<std::int64_t>(kFrameHeaderBytes + 7));
  EXPECT_EQ(registry.gauge_value("ipc.bytes_received"),
            static_cast<std::int64_t>(kFrameHeaderBytes + 7));
}

TEST(Listener, AcceptsAConnection) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("dasc-test-listener-" + std::to_string(::getpid()) + ".sock"))
          .string();
  Listener listener(path);
  std::thread client([&] {
    const auto transport = Transport::connect(path);
    transport->send({MessageType::kHello, "hi"});
  });
  const auto accepted = listener.accept(/*timeout_ms=*/5000);
  const auto hello = accepted->recv();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->payload, "hi");
  client.join();
  EXPECT_FALSE(std::filesystem::exists(path + ".nope"));
}

TEST(Listener, AcceptTimesOutAsIoError) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("dasc-test-timeout-" + std::to_string(::getpid()) + ".sock"))
          .string();
  Listener listener(path);
  EXPECT_THROW(listener.accept(/*timeout_ms=*/10), IoError);
}

TEST(SweepSpoolFiles, RemovesOnlyTheDeadWorkersFiles) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("dasc-test-sweep-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const long dead_pid = 123456;
  const auto touch = [&](const std::string& name) {
    std::ofstream(dir / name) << "x";
  };
  touch("dasc-spool-123456-0.spl");
  touch("dasc-spool-123456-17.spl");
  touch("dasc-spool-999-0.spl");     // someone else's spool
  touch("dasc-spool-123456-0.tmp");  // wrong suffix
  touch("unrelated.txt");

  EXPECT_EQ(sweep_spool_files(dir.string(), dead_pid), 2u);
  EXPECT_FALSE(fs::exists(dir / "dasc-spool-123456-0.spl"));
  EXPECT_FALSE(fs::exists(dir / "dasc-spool-123456-17.spl"));
  EXPECT_TRUE(fs::exists(dir / "dasc-spool-999-0.spl"));
  EXPECT_TRUE(fs::exists(dir / "dasc-spool-123456-0.tmp"));
  EXPECT_TRUE(fs::exists(dir / "unrelated.txt"));
  EXPECT_EQ(sweep_spool_files(dir.string(), dead_pid), 0u);  // idempotent
  fs::remove_all(dir);
}

TEST(SweepSpoolFiles, PidIsMatchedWholeNotAsAPrefix) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("dasc-test-sweep-pid-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const auto touch = [&](const std::string& name) {
    std::ofstream(dir / name) << "x";
  };
  // Pid 123 dies; files of pids 1234 and 12 — and malformed middles that
  // merely contain "123" — must survive a sweep for 123.
  touch("dasc-spool-123-0.spl");
  touch("dasc-spool-1234-0.spl");
  touch("dasc-spool-12-0.spl");
  touch("dasc-spool-123x-0.spl");
  touch("dasc-spool-x123-0.spl");
  touch("dasc-spool--123-0.spl");

  EXPECT_EQ(sweep_spool_files(dir.string(), 123), 1u);
  EXPECT_FALSE(fs::exists(dir / "dasc-spool-123-0.spl"));
  EXPECT_TRUE(fs::exists(dir / "dasc-spool-1234-0.spl"));
  EXPECT_TRUE(fs::exists(dir / "dasc-spool-12-0.spl"));
  EXPECT_TRUE(fs::exists(dir / "dasc-spool-123x-0.spl"));
  EXPECT_TRUE(fs::exists(dir / "dasc-spool-x123-0.spl"));
  EXPECT_TRUE(fs::exists(dir / "dasc-spool--123-0.spl"));
  fs::remove_all(dir);
}

TEST(SweepSpoolFiles, LiveSpoolSurvivesSweepingAnotherPid) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("dasc-test-sweep-live-" + std::to_string(::getpid()));
  fs::create_directories(dir);

  // A live spool with everything spilled (budget 0), then a sweep for a
  // different dead pid: the spool's pages must still read back intact
  // (its file is unlinked-at-creation, so no sweep can ever reach it).
  SpoolConfig config;
  config.dir = dir.string();
  config.budget_bytes = 0;
  config.page_bytes = 64;
  config.sort_on_seal = true;
  SpoolBuffer spool(config);
  for (int i = 0; i < 100; ++i) {
    spool.append("key" + std::to_string(i % 7), "value" + std::to_string(i));
  }
  spool.finish();
  ASSERT_GE(spool.pages_spilled(), 1u);

  std::ofstream(dir / "dasc-spool-424242-0.spl") << "x";
  EXPECT_EQ(sweep_spool_files(dir.string(), 424242), 1u);

  std::size_t seen = 0;
  std::string last_key;
  spool.for_each_sorted([&](std::string_view key, std::string_view value) {
    EXPECT_GE(key, last_key);  // still globally sorted
    EXPECT_FALSE(value.empty());
    last_key.assign(key);
    ++seen;
  });
  EXPECT_EQ(seen, 100u);
  fs::remove_all(dir);
}

TEST(WireReader, TruncatedPayloadReadsAreIoError) {
  WireWriter writer;
  writer.u32(7);
  const std::string payload = writer.take();
  {
    WireReader reader(payload);
    EXPECT_THROW(reader.u64(), IoError);  // only 4 bytes present
  }
  {
    WireReader reader(payload);
    EXPECT_THROW(reader.bytes(), IoError);  // length 7 > remaining 0
  }
}

}  // namespace
}  // namespace dasc::ipc
