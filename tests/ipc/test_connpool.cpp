// Data-plane connection pool tests (ipc/conn_pool.hpp): lease/give-back
// reuse, re-dial on slot re-homing, idle-connection caps, invalidation on
// owner death or broken conversations, and a 200-round seeded stress run
// mixing pulls, owner kills/restarts, and pool invalidation that checks
// the two pool invariants end to end: a successful pull never delivers a
// stale socket's data (generation-stamped owners prove it), and nothing
// leaks file descriptors (/proc/self/fd returns to its baseline).
#include "ipc/conn_pool.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ipc/message.hpp"
#include "ipc/transport.hpp"

namespace dasc::ipc {
namespace {

namespace fs = std::filesystem;

std::string socket_path(const char* tag, std::size_t slot) {
  return (fs::temp_directory_path() /
          ("dasc-cpool-" + std::to_string(::getpid()) + "-" + tag + "-" +
           std::to_string(slot) + ".sock"))
      .string();
}

std::size_t open_fd_count() {
  std::size_t count = 0;
  for (const auto& entry : fs::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++count;
  }
  return count;  // includes the iterator's own fd on every call — constant
}

/// A data-plane owner stand-in: accepts connections on `path` and serves
/// each on its own thread, answering every frame with its generation
/// stamp. A pull that completes against this server proves the socket it
/// used was dialed to *this* incarnation — the stale-data oracle for the
/// stress test.
class GenerationOwner {
 public:
  GenerationOwner(std::string path, std::uint64_t generation)
      : path_(std::move(path)), generation_(generation),
        listener_(path_), accept_thread_([this] { accept_loop(); }) {}

  ~GenerationOwner() {
    stop_.store(true, std::memory_order_release);
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> serving;
    {
      std::lock_guard lock(mutex_);
      for (auto& peer : peers_) peer->shutdown_rw();
      serving.swap(threads_);
    }
    for (std::thread& thread : serving) thread.join();
  }

  std::uint64_t generation() const { return generation_; }
  const std::string& path() const { return path_; }

 private:
  void accept_loop() {
    while (!stop_.load(std::memory_order_acquire)) {
      std::unique_ptr<Transport> peer;
      try {
        peer = listener_.try_accept(20);
      } catch (const std::exception&) {
        return;
      }
      if (peer == nullptr) continue;
      std::lock_guard lock(mutex_);
      Transport* raw = peer.get();
      peers_.push_back(std::move(peer));
      threads_.emplace_back([this, raw] { serve(raw); });
    }
  }

  void serve(Transport* peer) {
    try {
      while (true) {
        const std::optional<Message> request = peer->recv();
        if (!request.has_value()) return;
        WireWriter writer;
        writer.u64(generation_);
        peer->send({request->type, writer.take()});
      }
    } catch (const std::exception&) {
      // Peer vanished mid-frame (pool cleared, lease closed): fine.
    }
  }

  std::string path_;
  std::uint64_t generation_;
  Listener listener_;
  std::atomic<bool> stop_{false};
  std::mutex mutex_;
  std::vector<std::unique_ptr<Transport>> peers_;
  std::vector<std::thread> threads_;
  std::thread accept_thread_;
};

/// One request/reply exchange over a lease; returns the generation the
/// owner stamped, or nullopt (lease invalidated) when the conversation
/// broke — exactly the production rule: any wobble closes the socket.
std::optional<std::uint64_t> pull_once(ConnPool::Lease& lease) {
  try {
    lease->send({MessageType::kFetchPart, {}});
    const std::optional<Message> reply = lease->recv();
    if (!reply.has_value()) {
      lease.invalidate();
      return std::nullopt;
    }
    WireReader reader(reply->payload);
    return reader.u64();
  } catch (const std::exception&) {
    lease.invalidate();
    return std::nullopt;
  }
}

TEST(ConnPool, ReusesThePooledConnectionAcrossLeases) {
  GenerationOwner owner(socket_path("reuse", 0), 1);
  ConnPool pool;
  {
    ConnPool::Lease lease = pool.lease(0, owner.path());
    EXPECT_FALSE(lease.reused());
    EXPECT_EQ(pull_once(lease), std::uint64_t{1});
  }
  EXPECT_EQ(pool.pooled(), 1u);
  {
    ConnPool::Lease lease = pool.lease(0, owner.path());
    EXPECT_TRUE(lease.reused());
    EXPECT_EQ(pull_once(lease), std::uint64_t{1});
  }
  EXPECT_EQ(pool.opened(), 1u);
  EXPECT_EQ(pool.reused_count(), 1u);
}

TEST(ConnPool, RedialsWhenTheSlotRehomesToANewPath) {
  GenerationOwner old_home(socket_path("rehome-a", 0), 1);
  GenerationOwner new_home(socket_path("rehome-b", 0), 2);
  ConnPool pool;
  { ConnPool::Lease lease = pool.lease(0, old_home.path()); }
  EXPECT_EQ(pool.pooled(), 1u);
  // Same slot, different path: the pooled connection is to the wrong
  // process, so the pool must dial fresh — and the pull proves it reached
  // the new home, not the pooled socket.
  {
    ConnPool::Lease lease = pool.lease(0, new_home.path());
    EXPECT_FALSE(lease.reused());
    EXPECT_EQ(pull_once(lease), std::uint64_t{2});
  }
  EXPECT_EQ(pool.opened(), 2u);
  EXPECT_EQ(pool.pooled(), 1u);  // one idle connection per slot, the new one
}

TEST(ConnPool, InvalidateSlotDropsTheIdleConnection) {
  GenerationOwner owner(socket_path("invalidate", 3), 1);
  ConnPool pool;
  { ConnPool::Lease lease = pool.lease(3, owner.path()); }
  ASSERT_EQ(pool.pooled(), 1u);
  pool.invalidate(3);
  EXPECT_EQ(pool.pooled(), 0u);
  ConnPool::Lease lease = pool.lease(3, owner.path());
  EXPECT_FALSE(lease.reused());  // a dropped connection is never reused
}

TEST(ConnPool, InvalidatedLeaseClosesInsteadOfPooling) {
  GenerationOwner owner(socket_path("broken", 0), 1);
  ConnPool pool;
  {
    ConnPool::Lease lease = pool.lease(0, owner.path());
    lease.invalidate();  // conversation broke: never pool this socket
  }
  EXPECT_EQ(pool.pooled(), 0u);
  ConnPool::Lease lease = pool.lease(0, owner.path());
  EXPECT_FALSE(lease.reused());
}

TEST(ConnPool, KeepsAtMostOneIdleConnectionPerSlot) {
  GenerationOwner owner(socket_path("cap", 0), 1);
  ConnPool pool;
  {
    ConnPool::Lease first = pool.lease(0, owner.path());
    ConnPool::Lease second = pool.lease(0, owner.path());  // concurrent: dials
    EXPECT_FALSE(first.reused());
    EXPECT_FALSE(second.reused());
  }
  EXPECT_EQ(pool.opened(), 2u);
  EXPECT_EQ(pool.pooled(), 1u);  // the extra returned connection was closed
}

TEST(ConnPool, ClearClosesEveryPooledConnection) {
  GenerationOwner a(socket_path("clear", 0), 1);
  GenerationOwner b(socket_path("clear", 1), 1);
  ConnPool pool;
  { ConnPool::Lease lease = pool.lease(0, a.path()); }
  { ConnPool::Lease lease = pool.lease(1, b.path()); }
  ASSERT_EQ(pool.pooled(), 2u);
  pool.clear();
  EXPECT_EQ(pool.pooled(), 0u);
  pool.clear();  // idempotent
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(ConnPool, FailedDialIsTypedAndLeavesNoEntry) {
  ConnPool pool;
  EXPECT_THROW(pool.lease(0, socket_path("nobody-listens", 0)), IoError);
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_EQ(pool.opened(), 0u);
}

TEST(ConnPool, StressPullsKillsAndInvalidationsLeakNothing) {
  // 200 seeded rounds over three owner slots: pull through the pool, kill
  // and restart owners (bumping their generation), sometimes apply the
  // production invalidate-on-death rule and sometimes "forget" it so the
  // next pull trips over the stale socket. Invariants:
  //   1. no successful pull ever returns a previous generation's stamp —
  //      a stale pooled socket may fail, never deliver;
  //   2. after teardown the process holds exactly the fds it started with.
  const std::size_t fd_baseline = open_fd_count();
  {
    constexpr std::size_t kSlots = 3;
    Rng rng(0xC0117001);
    std::uint64_t next_generation = 1;
    std::vector<std::unique_ptr<GenerationOwner>> owners;
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
      owners.push_back(std::make_unique<GenerationOwner>(
          socket_path("stress", slot), next_generation++));
    }
    ConnPool pool;
    std::size_t pulls_delivered = 0;
    std::size_t stale_failures = 0;

    for (int round = 0; round < 200; ++round) {
      const std::size_t slot = rng.uniform_index(kSlots);
      switch (rng.uniform_index(4)) {
        case 0: {  // kill + restart the owner, new generation, same path
          const std::string path = owners[slot]->path();
          owners[slot].reset();
          owners[slot] = std::make_unique<GenerationOwner>(
              path, next_generation++);
          if (rng.uniform_index(2) == 0) {
            pool.invalidate(slot);  // the production kPullFailed rule
          }                         // else: leave the stale socket pooled
          break;
        }
        default: {  // pull (possibly retrying through a stale socket)
          for (int attempt = 0; attempt < 2; ++attempt) {
            std::optional<std::uint64_t> stamp;
            try {
              ConnPool::Lease lease = pool.lease(slot, owners[slot]->path());
              stamp = pull_once(lease);
            } catch (const IoError&) {
              stamp = std::nullopt;  // dial raced the restart
            }
            if (stamp.has_value()) {
              // The stale-data invariant: whatever the pool did, data only
              // ever comes from the owner's current incarnation.
              ASSERT_EQ(*stamp, owners[slot]->generation())
                  << "round " << round << " slot " << slot;
              ++pulls_delivered;
              break;
            }
            ++stale_failures;
            pool.invalidate(slot);  // discovered the death: drop and retry
          }
          break;
        }
      }
    }
    EXPECT_GT(pulls_delivered, 100u);  // the happy path dominated
    EXPECT_GT(stale_failures, 0u);     // and stale sockets were exercised
    EXPECT_GT(pool.reused_count(), 0u);  // pooling actually pooled
    pool.clear();
    EXPECT_EQ(pool.pooled(), 0u);
  }
  EXPECT_EQ(open_fd_count(), fd_baseline);
}

}  // namespace
}  // namespace dasc::ipc
