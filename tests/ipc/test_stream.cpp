// Chunked streaming tests (ipc/stream.hpp): round trips across chunk
// boundaries under randomized sizes and windows, zero-length and
// single-chunk payloads staying plain frames, mid-stream peer death as a
// typed IoError, per-chunk and whole-payload tamper detection, chunk
// sequencing, interloper routing, and flow-control credit validation.
#include "ipc/stream.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "ipc/transport.hpp"

namespace dasc::ipc {
namespace {

/// A connected transport pair over a socketpair.
struct Pair {
  Pair() {
    const auto [a, b] = make_socketpair();
    left = std::make_unique<Transport>(a);
    right = std::make_unique<Transport>(b);
  }
  std::unique_ptr<Transport> left;
  std::unique_ptr<Transport> right;
};

std::string random_payload(Rng& rng, std::size_t n) {
  std::string bytes(n, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(rng.uniform_index(256));  // embedded NULs welcome
  }
  return bytes;
}

/// Round-trip one message through send_message/recv_message with a
/// concurrent sender (the sender blocks for window credit, so the
/// receiver must run at the same time — exactly the production shape).
void round_trip(const Message& message, const StreamConfig& config) {
  Pair pair;
  std::thread sender(
      [&] { send_message(*pair.left, message, config); });
  const std::optional<Message> received =
      recv_message(*pair.right, config);
  sender.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->type, message.type);
  EXPECT_EQ(received->payload, message.payload);
}

TEST(Stream, LargePayloadRoundTripsInChunks) {
  Rng rng(0x57E0);
  const StreamConfig config{/*chunk_bytes=*/64, /*window_chunks=*/2};
  // Sizes straddling every boundary: one byte over a chunk, exact
  // multiples, a partial tail, and far more chunks than the window.
  for (const std::size_t size : {65ul, 128ul, 129ul, 1000ul, 64ul * 40}) {
    Message message{MessageType::kFetchData, random_payload(rng, size)};
    round_trip(message, config);
  }
}

TEST(Stream, ZeroLengthAndSingleChunkPayloadsShipAsPlainFrames) {
  const StreamConfig config{/*chunk_bytes=*/64, /*window_chunks=*/2};
  for (const std::size_t size : {0ul, 1ul, 63ul, 64ul}) {
    Pair pair;
    Message message{MessageType::kMapDone, std::string(size, 'x')};
    send_message(*pair.left, message, config);
    // Observe the wire directly: at or under chunk_bytes there is no
    // chunking — one frame of the final type, never kDataChunk.
    const auto raw = pair.right->recv();
    ASSERT_TRUE(raw.has_value()) << "size=" << size;
    EXPECT_EQ(raw->type, MessageType::kMapDone);
    EXPECT_EQ(raw->payload, message.payload);
  }
}

TEST(Stream, RandomSizesChunkSizesAndWindowsRoundTrip) {
  Rng rng(0xD15C);
  for (int round = 0; round < 30; ++round) {
    const StreamConfig config{1 + rng.uniform_index(256),
                              1 + rng.uniform_index(5)};
    const std::size_t size = rng.uniform_index(1500);
    Message message{MessageType::kReducePullDone,
                    random_payload(rng, size)};
    round_trip(message, config);
  }
}

TEST(Stream, PeerDeathMidStreamIsIoError) {
  Pair pair;
  // One chunk of a declared-larger stream, then the peer vanishes: the
  // receiver must get the typed mid-stream error, never a short payload.
  pair.left->send(encode_chunk(MessageType::kFetchData, /*total_bytes=*/100,
                               /*chunk_index=*/0, "first 32 bytes..."));
  pair.left->close();
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, OutOfSequenceChunkIsIoError) {
  Pair pair;
  pair.left->send(
      encode_chunk(MessageType::kFetchData, 100, 0, "chunk zero"));
  pair.left->send(
      encode_chunk(MessageType::kFetchData, 100, 2, "chunk two?"));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, InconsistentChunkHeaderIsIoError) {
  Pair pair;
  pair.left->send(
      encode_chunk(MessageType::kFetchData, 100, 0, "total=100"));
  pair.left->send(
      encode_chunk(MessageType::kFetchData, 200, 1, "total=200"));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, ChunksExceedingDeclaredTotalAreIoError) {
  Pair pair;
  pair.left->send(encode_chunk(MessageType::kFetchData, /*total_bytes=*/4,
                               0, "way more than four bytes"));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, OversizedStreamDeclarationIsIoError) {
  Pair pair;
  // Above the 4 GiB stream cap: rejected from the first chunk header,
  // before any allocation approaches the declared size.
  pair.left->send(encode_chunk(MessageType::kFetchData,
                               (std::uint64_t{1} << 32) + 1, 0, "x"));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, TamperedTrailerCrcIsIoError) {
  Pair pair;
  const std::string payload = "reassembled payload under test";
  pair.left->send(encode_chunk(MessageType::kFetchData, payload.size(), 0,
                               payload));
  pair.left->send(encode_stream_end(MessageType::kFetchData, payload.size(),
                                    /*chunk_count=*/1,
                                    crc32(payload) ^ 0x1));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, WrongTrailerChunkCountIsIoError) {
  Pair pair;
  const std::string payload = "one chunk, trailer claims two";
  pair.left->send(encode_chunk(MessageType::kFetchData, payload.size(), 0,
                               payload));
  pair.left->send(encode_stream_end(MessageType::kFetchData, payload.size(),
                                    /*chunk_count=*/2, crc32(payload)));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, ShortPayloadAtTrailerIsIoError) {
  Pair pair;
  const std::string payload = "only half arrives";
  pair.left->send(encode_chunk(MessageType::kFetchData,
                               /*total_bytes=*/payload.size() * 2, 0,
                               payload));
  pair.left->send(encode_stream_end(MessageType::kFetchData,
                                    payload.size() * 2, 1, crc32(payload)));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, BareHeartbeatMidStreamIsSkipped) {
  Pair pair;
  const std::string payload = "heartbeats may interleave";
  pair.left->send(encode_chunk(MessageType::kFetchData, payload.size(), 0,
                               payload));
  pair.left->send({MessageType::kHeartbeat, {}});
  pair.left->send(encode_stream_end(MessageType::kFetchData, payload.size(),
                                    1, crc32(payload)));
  const auto received = recv_message(*pair.right);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload, payload);
}

TEST(Stream, InterloperReceivesUnrelatedMidStreamFrames) {
  Pair pair;
  const std::string payload = "interloper drains protocol frames";
  pair.left->send(encode_chunk(MessageType::kFetchData, payload.size(), 0,
                               payload));
  pair.left->send({MessageType::kPullFailed, "unrelated"});
  pair.left->send(encode_stream_end(MessageType::kFetchData, payload.size(),
                                    1, crc32(payload)));
  std::vector<Message> seen;
  const auto received = recv_message(
      *pair.right, {}, [&](const Message& m) { seen.push_back(m); });
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload, payload);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].type, MessageType::kPullFailed);
  EXPECT_EQ(seen[0].payload, "unrelated");
}

TEST(Stream, UnexpectedFrameMidStreamWithoutInterloperIsIoError) {
  Pair pair;
  pair.left->send(encode_chunk(MessageType::kFetchData, 100, 0, "opening"));
  pair.left->send({MessageType::kMapAssign, "real protocol traffic"});
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, PlainFramesPassThroughUntouched) {
  Pair pair;
  pair.left->send({MessageType::kPullResume, "not a chunk"});
  const auto received = recv_message(*pair.right);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->type, MessageType::kPullResume);
  EXPECT_EQ(received->payload, "not a chunk");
}

TEST(Stream, OutOfSequenceCreditIsIoErrorAtTheSender) {
  Pair pair;
  // window=1: the sender blocks for credit after its first chunk. A bogus
  // ack (acked=0, i.e. no forward progress) must be the typed error.
  const StreamConfig config{/*chunk_bytes=*/4, /*window_chunks=*/1};
  Message message{MessageType::kFetchData, std::string(64, 'z')};
  std::atomic<bool> threw{false};
  std::thread sender([&] {
    try {
      send_message(*pair.left, message, config);
    } catch (const IoError&) {
      threw = true;
    }
  });
  ASSERT_TRUE(pair.right->recv().has_value());  // chunk 0 arrives
  WireWriter bogus;
  bogus.u64(0);
  pair.right->send({MessageType::kChunkAck, bogus.take()});
  sender.join();
  EXPECT_TRUE(threw);
}

TEST(Stream, SenderSeesPeerDeathWhileAwaitingCredit) {
  Pair pair;
  const StreamConfig config{/*chunk_bytes=*/4, /*window_chunks=*/1};
  Message message{MessageType::kFetchData, std::string(64, 'z')};
  std::atomic<bool> threw{false};
  std::thread sender([&] {
    try {
      send_message(*pair.left, message, config);
    } catch (const IoError&) {
      threw = true;
    }
  });
  ASSERT_TRUE(pair.right->recv().has_value());  // chunk 0 arrives
  pair.right->close();  // peer dies instead of granting credit
  sender.join();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace dasc::ipc
