// Chunked streaming tests (ipc/stream.hpp): round trips across chunk
// boundaries under randomized sizes and windows, zero-length and
// single-chunk payloads staying plain frames, mid-stream peer death as a
// typed IoError, per-chunk and whole-payload tamper detection, chunk
// sequencing, interloper routing, flow-control credit validation, and the
// adaptive-config differential: payload-derived framing must be
// byte-identical to fixed framing in every endpoint pairing, with tamper
// detection intact.
#include "ipc/stream.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "ipc/transport.hpp"

namespace dasc::ipc {
namespace {

/// A connected transport pair over a socketpair.
struct Pair {
  Pair() {
    const auto [a, b] = make_socketpair();
    left = std::make_unique<Transport>(a);
    right = std::make_unique<Transport>(b);
  }
  std::unique_ptr<Transport> left;
  std::unique_ptr<Transport> right;
};

std::string random_payload(Rng& rng, std::size_t n) {
  std::string bytes(n, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(rng.uniform_index(256));  // embedded NULs welcome
  }
  return bytes;
}

/// Round-trip one message through send_message/recv_message with a
/// concurrent sender (the sender blocks for window credit, so the
/// receiver must run at the same time — exactly the production shape).
void round_trip(const Message& message, const StreamConfig& config) {
  Pair pair;
  std::thread sender(
      [&] { send_message(*pair.left, message, config); });
  const std::optional<Message> received =
      recv_message(*pair.right, config);
  sender.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->type, message.type);
  EXPECT_EQ(received->payload, message.payload);
}

TEST(Stream, LargePayloadRoundTripsInChunks) {
  Rng rng(0x57E0);
  const StreamConfig config{/*chunk_bytes=*/64, /*window_chunks=*/2};
  // Sizes straddling every boundary: one byte over a chunk, exact
  // multiples, a partial tail, and far more chunks than the window.
  for (const std::size_t size : {65ul, 128ul, 129ul, 1000ul, 64ul * 40}) {
    Message message{MessageType::kFetchData, random_payload(rng, size)};
    round_trip(message, config);
  }
}

TEST(Stream, ZeroLengthAndSingleChunkPayloadsShipAsPlainFrames) {
  const StreamConfig config{/*chunk_bytes=*/64, /*window_chunks=*/2};
  for (const std::size_t size : {0ul, 1ul, 63ul, 64ul}) {
    Pair pair;
    Message message{MessageType::kMapDone, std::string(size, 'x')};
    send_message(*pair.left, message, config);
    // Observe the wire directly: at or under chunk_bytes there is no
    // chunking — one frame of the final type, never kDataChunk.
    const auto raw = pair.right->recv();
    ASSERT_TRUE(raw.has_value()) << "size=" << size;
    EXPECT_EQ(raw->type, MessageType::kMapDone);
    EXPECT_EQ(raw->payload, message.payload);
  }
}

TEST(Stream, RandomSizesChunkSizesAndWindowsRoundTrip) {
  Rng rng(0xD15C);
  for (int round = 0; round < 30; ++round) {
    const StreamConfig config{1 + rng.uniform_index(256),
                              1 + rng.uniform_index(5)};
    const std::size_t size = rng.uniform_index(1500);
    Message message{MessageType::kReducePullDone,
                    random_payload(rng, size)};
    round_trip(message, config);
  }
}

TEST(Stream, PeerDeathMidStreamIsIoError) {
  Pair pair;
  // One chunk of a declared-larger stream, then the peer vanishes: the
  // receiver must get the typed mid-stream error, never a short payload.
  pair.left->send(encode_chunk(MessageType::kFetchData, /*total_bytes=*/100,
                               /*chunk_index=*/0, "first 32 bytes..."));
  pair.left->close();
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, OutOfSequenceChunkIsIoError) {
  Pair pair;
  pair.left->send(
      encode_chunk(MessageType::kFetchData, 100, 0, "chunk zero"));
  pair.left->send(
      encode_chunk(MessageType::kFetchData, 100, 2, "chunk two?"));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, InconsistentChunkHeaderIsIoError) {
  Pair pair;
  pair.left->send(
      encode_chunk(MessageType::kFetchData, 100, 0, "total=100"));
  pair.left->send(
      encode_chunk(MessageType::kFetchData, 200, 1, "total=200"));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, ChunksExceedingDeclaredTotalAreIoError) {
  Pair pair;
  pair.left->send(encode_chunk(MessageType::kFetchData, /*total_bytes=*/4,
                               0, "way more than four bytes"));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, OversizedStreamDeclarationIsIoError) {
  Pair pair;
  // Above the 4 GiB stream cap: rejected from the first chunk header,
  // before any allocation approaches the declared size.
  pair.left->send(encode_chunk(MessageType::kFetchData,
                               (std::uint64_t{1} << 32) + 1, 0, "x"));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, TamperedTrailerCrcIsIoError) {
  Pair pair;
  const std::string payload = "reassembled payload under test";
  pair.left->send(encode_chunk(MessageType::kFetchData, payload.size(), 0,
                               payload));
  pair.left->send(encode_stream_end(MessageType::kFetchData, payload.size(),
                                    /*chunk_count=*/1,
                                    crc32(payload) ^ 0x1));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, WrongTrailerChunkCountIsIoError) {
  Pair pair;
  const std::string payload = "one chunk, trailer claims two";
  pair.left->send(encode_chunk(MessageType::kFetchData, payload.size(), 0,
                               payload));
  pair.left->send(encode_stream_end(MessageType::kFetchData, payload.size(),
                                    /*chunk_count=*/2, crc32(payload)));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, ShortPayloadAtTrailerIsIoError) {
  Pair pair;
  const std::string payload = "only half arrives";
  pair.left->send(encode_chunk(MessageType::kFetchData,
                               /*total_bytes=*/payload.size() * 2, 0,
                               payload));
  pair.left->send(encode_stream_end(MessageType::kFetchData,
                                    payload.size() * 2, 1, crc32(payload)));
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, BareHeartbeatMidStreamIsSkipped) {
  Pair pair;
  const std::string payload = "heartbeats may interleave";
  pair.left->send(encode_chunk(MessageType::kFetchData, payload.size(), 0,
                               payload));
  pair.left->send({MessageType::kHeartbeat, {}});
  pair.left->send(encode_stream_end(MessageType::kFetchData, payload.size(),
                                    1, crc32(payload)));
  const auto received = recv_message(*pair.right);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload, payload);
}

TEST(Stream, InterloperReceivesUnrelatedMidStreamFrames) {
  Pair pair;
  const std::string payload = "interloper drains protocol frames";
  pair.left->send(encode_chunk(MessageType::kFetchData, payload.size(), 0,
                               payload));
  pair.left->send({MessageType::kPullFailed, "unrelated"});
  pair.left->send(encode_stream_end(MessageType::kFetchData, payload.size(),
                                    1, crc32(payload)));
  std::vector<Message> seen;
  const auto received = recv_message(
      *pair.right, {}, [&](const Message& m) { seen.push_back(m); });
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload, payload);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].type, MessageType::kPullFailed);
  EXPECT_EQ(seen[0].payload, "unrelated");
}

TEST(Stream, UnexpectedFrameMidStreamWithoutInterloperIsIoError) {
  Pair pair;
  pair.left->send(encode_chunk(MessageType::kFetchData, 100, 0, "opening"));
  pair.left->send({MessageType::kMapAssign, "real protocol traffic"});
  EXPECT_THROW(recv_message(*pair.right), IoError);
}

TEST(Stream, PlainFramesPassThroughUntouched) {
  Pair pair;
  pair.left->send({MessageType::kPullResume, "not a chunk"});
  const auto received = recv_message(*pair.right);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->type, MessageType::kPullResume);
  EXPECT_EQ(received->payload, "not a chunk");
}

TEST(Stream, OutOfSequenceCreditIsIoErrorAtTheSender) {
  Pair pair;
  // window=1: the sender blocks for credit after its first chunk. A bogus
  // ack (acked=0, i.e. no forward progress) must be the typed error.
  const StreamConfig config{/*chunk_bytes=*/4, /*window_chunks=*/1};
  Message message{MessageType::kFetchData, std::string(64, 'z')};
  std::atomic<bool> threw{false};
  std::thread sender([&] {
    try {
      send_message(*pair.left, message, config);
    } catch (const IoError&) {
      threw = true;
    }
  });
  ASSERT_TRUE(pair.right->recv().has_value());  // chunk 0 arrives
  WireWriter bogus;
  bogus.u64(0);
  pair.right->send({MessageType::kChunkAck, bogus.take()});
  sender.join();
  EXPECT_TRUE(threw);
}

TEST(Stream, SenderSeesPeerDeathWhileAwaitingCredit) {
  Pair pair;
  const StreamConfig config{/*chunk_bytes=*/4, /*window_chunks=*/1};
  Message message{MessageType::kFetchData, std::string(64, 'z')};
  std::atomic<bool> threw{false};
  std::thread sender([&] {
    try {
      send_message(*pair.left, message, config);
    } catch (const IoError&) {
      threw = true;
    }
  });
  ASSERT_TRUE(pair.right->recv().has_value());  // chunk 0 arrives
  pair.right->close();  // peer dies instead of granting credit
  sender.join();
  EXPECT_TRUE(threw);
}

// --- Adaptive framing (derived_stream_config; DESIGN.md section 15) ---

TEST(Stream, DerivedConfigStaysWithinItsDocumentedBounds) {
  // Pure and deterministic over the whole size range: chunks 64 KiB-
  // aligned within [256 KiB, 4 MiB], windows within [4, 16], and both ends
  // derive identical values from the same declared size.
  const std::uint64_t kKi = 1024;
  for (const std::uint64_t bytes :
       {std::uint64_t{0}, std::uint64_t{1}, 4 * kKi, 256 * kKi,
        16 * kKi * kKi, 64 * kKi * kKi, 256 * kKi * kKi,
        std::uint64_t{4} * kKi * kKi * kKi}) {
    const StreamConfig derived = derived_stream_config(bytes);
    EXPECT_GE(derived.chunk_bytes, 256 * kKi) << "bytes=" << bytes;
    EXPECT_LE(derived.chunk_bytes, 4 * kKi * kKi) << "bytes=" << bytes;
    EXPECT_EQ(derived.chunk_bytes % (64 * kKi), 0u) << "bytes=" << bytes;
    EXPECT_GE(derived.window_chunks, 4u) << "bytes=" << bytes;
    EXPECT_LE(derived.window_chunks, 16u) << "bytes=" << bytes;
    EXPECT_FALSE(derived.adaptive);  // already resolved
    const StreamConfig again = derived_stream_config(bytes);
    EXPECT_EQ(derived.chunk_bytes, again.chunk_bytes);
    EXPECT_EQ(derived.window_chunks, again.window_chunks);
  }
  // Small payloads keep the historical framing exactly.
  EXPECT_EQ(derived_stream_config(0).chunk_bytes, StreamConfig{}.chunk_bytes);
  // The window floor equals the fixed default: the fact that makes mixed
  // adaptive/fixed pairings deadlock-free (the receiver's ack cadence can
  // never exceed any sender's window).
  EXPECT_EQ(derived_stream_config(std::uint64_t{1} << 32).window_chunks,
            StreamConfig{}.window_chunks);
}

/// Round-trips `message` with independent sender/receiver configs and
/// returns the received payload (so callers can diff pairings).
std::string round_trip_mixed(const Message& message,
                             const StreamConfig& send_config,
                             const StreamConfig& recv_config) {
  Pair pair;
  std::thread sender(
      [&] { send_message(*pair.left, message, send_config); });
  const std::optional<Message> received =
      recv_message(*pair.right, recv_config);
  sender.join();
  EXPECT_TRUE(received.has_value());
  EXPECT_EQ(received->type, message.type);
  return received.has_value() ? received->payload : std::string();
}

TEST(Stream, AdaptiveFramingIsByteIdenticalToFixedInEveryPairing) {
  // Differential across the boundary sizes the derivation cares about:
  // empty, one byte, a page boundary +/- 1, the default chunk size +/- 1
  // (the plain-frame/stream crossover), and a payload big enough that the
  // derived chunk leaves the 256 KiB floor (1 MiB chunks, window 8).
  const std::size_t kPage = 4096;
  const std::size_t kChunk = 256 * 1024;
  const std::size_t kBig = 64ul * 1024 * 1024;
  const StreamConfig fixed;  // the historical defaults
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, kPage - 1, kPage, kPage + 1,
        kChunk - 1, kChunk, kChunk + 1, kBig}) {
    // Deterministic non-trivial bytes; cheap enough for the 64 MiB case.
    std::string payload(size, '\0');
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<char>((i * 2654435761u) >> 24);
    }
    const Message message{MessageType::kFetchData, std::move(payload)};
    const std::string via_fixed =
        round_trip_mixed(message, fixed, fixed);
    ASSERT_EQ(via_fixed, message.payload) << "size=" << size;
    // Adaptive on both ends, and each mixed pairing: all byte-identical.
    EXPECT_EQ(round_trip_mixed(message, adaptive_stream_config(),
                               adaptive_stream_config()),
              via_fixed)
        << "size=" << size;
    EXPECT_EQ(round_trip_mixed(message, adaptive_stream_config(), fixed),
              via_fixed)
        << "size=" << size;
    EXPECT_EQ(round_trip_mixed(message, fixed, adaptive_stream_config()),
              via_fixed)
        << "size=" << size;
  }
}

TEST(Stream, AdaptiveReceiverStillFailsTamperedStreamsTyped) {
  const StreamConfig adaptive = adaptive_stream_config();
  {  // whole-payload CRC tamper
    Pair pair;
    const std::string payload = "adaptive receiver, tampered trailer";
    pair.left->send(encode_chunk(MessageType::kFetchData, payload.size(), 0,
                                 payload));
    pair.left->send(encode_stream_end(MessageType::kFetchData,
                                      payload.size(), 1,
                                      crc32(payload) ^ 0x1));
    EXPECT_THROW(recv_message(*pair.right, adaptive), IoError);
  }
  {  // peer death mid-stream
    Pair pair;
    pair.left->send(encode_chunk(MessageType::kFetchData, 100, 0, "opening"));
    pair.left->close();
    EXPECT_THROW(recv_message(*pair.right, adaptive), IoError);
  }
  {  // out-of-sequence chunk
    Pair pair;
    pair.left->send(encode_chunk(MessageType::kFetchData, 100, 0, "zero"));
    pair.left->send(encode_chunk(MessageType::kFetchData, 100, 2, "two?"));
    EXPECT_THROW(recv_message(*pair.right, adaptive), IoError);
  }
  {  // oversized declaration still rejected before allocation
    Pair pair;
    pair.left->send(encode_chunk(MessageType::kFetchData,
                                 (std::uint64_t{1} << 32) + 1, 0, "x"));
    EXPECT_THROW(recv_message(*pair.right, adaptive), IoError);
  }
}

}  // namespace
}  // namespace dasc::ipc
