// Transport fuzz/property suite: seeded random byte streams, bit-flipped
// frames, truncations at every offset, and oversized length fields must
// surface as clean EOF (nullopt) or a typed dasc::IoError — never a hang,
// a crash, or a silently wrong payload. WireWriter/WireReader round-trip
// under randomized op sequences and throw on every strict truncation.
// Seeds are fixed so every "random" case is a deterministic regression.
#include "ipc/transport.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ipc/message.hpp"

namespace dasc::ipc {
namespace {

/// A connected transport pair over a socketpair.
struct Pair {
  Pair() {
    const auto [a, b] = make_socketpair();
    left = std::make_unique<Transport>(a);
    right = std::make_unique<Transport>(b);
  }
  std::unique_ptr<Transport> left;
  std::unique_ptr<Transport> right;
};

/// Write raw bytes to the peer's socket, bypassing Message framing.
void send_raw(Transport& transport, const std::string& bytes) {
  ASSERT_EQ(::write(transport.fd(), bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
}

/// Drain one peer until clean EOF or a typed IoError. Any other outcome
/// (a different exception type, or an OS-level hang the test timeout would
/// catch) is the property violation this suite exists to find.
enum class DrainEnd { kCleanEof, kIoError };
DrainEnd drain(Transport& transport, std::vector<Message>* delivered) {
  while (true) {
    std::optional<Message> message;
    try {
      message = transport.recv();
    } catch (const IoError&) {
      return DrainEnd::kIoError;
    }
    if (!message.has_value()) return DrainEnd::kCleanEof;
    if (delivered != nullptr) delivered->push_back(std::move(*message));
  }
}

std::string random_bytes(Rng& rng, std::size_t n) {
  std::string bytes(n, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(rng.uniform_index(256));
  }
  return bytes;
}

TEST(TransportFuzz, TruncationAtEveryOffsetIsEofOrIoError) {
  const std::string frame =
      encode_frame({MessageType::kFetchData, "truncate me anywhere"});
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    Pair pair;
    if (cut > 0) send_raw(*pair.left, frame.substr(0, cut));
    pair.left->close();
    std::vector<Message> delivered;
    const DrainEnd end = drain(*pair.right, &delivered);
    EXPECT_TRUE(delivered.empty()) << "cut=" << cut;
    // Only the empty prefix is a frame boundary; every other cut is a
    // truncated frame and must be the typed error, not silent EOF.
    if (cut == 0) {
      EXPECT_EQ(end, DrainEnd::kCleanEof);
    } else {
      EXPECT_EQ(end, DrainEnd::kIoError) << "cut=" << cut;
    }
  }
}

TEST(TransportFuzz, EveryByteFlipIsIoErrorOrPayloadIdentical) {
  const std::string payload = "flip any byte of this frame";
  const std::string frame = encode_frame({MessageType::kFetchData, payload});
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string bent = frame;
    bent[i] = static_cast<char>(bent[i] ^ 0x1);
    Pair pair;
    send_raw(*pair.left, bent);
    pair.left->close();
    // The one flip the CRC cannot see is the header's type field (the CRC
    // covers the payload); such a frame may deliver — but then its payload
    // must still be byte-identical. Everything else is IoError: magic,
    // length (short payload fails CRC, long payload hits EOF), CRC field,
    // payload bytes.
    try {
      const auto message = pair.right->recv();
      ASSERT_TRUE(message.has_value()) << "flip at " << i;
      EXPECT_EQ(message->payload, payload) << "flip at " << i;
      EXPECT_TRUE(i >= 4 && i < 8)
          << "flip at " << i << " delivered outside the type field";
    } catch (const IoError&) {
      // Typed rejection: the desired outcome for every other offset.
    }
  }
}

TEST(TransportFuzz, SeededRandomByteStreamsNeverHangOrCrash) {
  Rng rng(0xF022);
  for (int round = 0; round < 64; ++round) {
    Pair pair;
    const std::size_t len = rng.uniform_index(1500);
    std::string stream = random_bytes(rng, len);
    // Half the streams open with valid magic so the fuzz regularly gets
    // past the first header check into length/CRC/payload handling.
    if (round % 2 == 0 && stream.size() >= 4) {
      std::memcpy(stream.data(), kFrameMagic.data(), 4);
    }
    send_raw(*pair.left, stream);
    pair.left->close();
    std::vector<Message> delivered;
    const DrainEnd end = drain(*pair.right, &delivered);
    if (len == 0) {
      EXPECT_EQ(end, DrainEnd::kCleanEof);
    }
    // A delivered frame is only legitimate if its CRC validated, i.e. the
    // random bytes happened to encode a well-formed frame; with a random
    // 32-bit CRC that never occurs at these lengths.
    EXPECT_TRUE(delivered.empty()) << "round=" << round;
  }
}

TEST(TransportFuzz, RandomOversizedLengthFieldsAreIoError) {
  Rng rng(0xBEEF);
  for (int round = 0; round < 16; ++round) {
    Pair pair;
    std::string header(kFrameHeaderBytes, '\0');
    std::memcpy(header.data(), kFrameMagic.data(), 4);
    const std::uint32_t type =
        static_cast<std::uint32_t>(rng.uniform_index(32));
    // Any declared length above the cap must be rejected from the header
    // alone — the receiver never allocates for it.
    const std::uint32_t huge = static_cast<std::uint32_t>(
        kMaxPayloadBytes + 1 +
        rng.uniform_index(std::uint32_t(-1) - kMaxPayloadBytes - 1));
    const std::uint32_t crc =
        static_cast<std::uint32_t>(rng.uniform_index(0x100000000ULL));
    std::memcpy(header.data() + 4, &type, 4);
    std::memcpy(header.data() + 8, &huge, 4);
    std::memcpy(header.data() + 12, &crc, 4);
    send_raw(*pair.left, header);
    pair.left->close();
    EXPECT_THROW(pair.right->recv(), IoError) << "declared=" << huge;
  }
}

TEST(TransportFuzz, GarbageBetweenValidFramesIsIoErrorNotWrongPayload) {
  // A valid frame followed by garbage: the good frame delivers intact,
  // then the stream dies typed — corruption never bleeds backwards.
  Rng rng(0xCAFE);
  for (int round = 0; round < 16; ++round) {
    Pair pair;
    const std::string payload = "the good frame " + std::to_string(round);
    std::string bytes = encode_frame({MessageType::kMapDone, payload});
    bytes += random_bytes(rng, 1 + rng.uniform_index(200));
    send_raw(*pair.left, bytes);
    pair.left->close();
    std::vector<Message> delivered;
    const DrainEnd end = drain(*pair.right, &delivered);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].payload, payload);
    EXPECT_EQ(end, DrainEnd::kIoError) << "round=" << round;
  }
}

/// One randomly generated WireWriter op with its expected read-back.
struct WireOp {
  enum Kind { kU32, kU64, kBytes, kRecord } kind;
  std::uint64_t number = 0;
  std::string first;
  std::string second;
};

std::vector<WireOp> random_ops(Rng& rng) {
  std::vector<WireOp> ops(1 + rng.uniform_index(12));
  for (WireOp& op : ops) {
    op.kind = static_cast<WireOp::Kind>(rng.uniform_index(4));
    switch (op.kind) {
      case WireOp::kU32:
        op.number = rng.uniform_index(0x100000000ULL);
        break;
      case WireOp::kU64:
        op.number = rng();
        break;
      case WireOp::kBytes:
        op.first = random_bytes(rng, rng.uniform_index(64));
        break;
      case WireOp::kRecord:
        op.first = random_bytes(rng, rng.uniform_index(32));
        op.second = random_bytes(rng, rng.uniform_index(32));
        break;
    }
  }
  return ops;
}

std::string encode_ops(const std::vector<WireOp>& ops) {
  WireWriter writer;
  for (const WireOp& op : ops) {
    switch (op.kind) {
      case WireOp::kU32:
        writer.u32(static_cast<std::uint32_t>(op.number));
        break;
      case WireOp::kU64:
        writer.u64(op.number);
        break;
      case WireOp::kBytes:
        writer.bytes(op.first);
        break;
      case WireOp::kRecord:
        writer.record(op.first, op.second);
        break;
    }
  }
  return writer.take();
}

void decode_ops(const std::vector<WireOp>& ops, std::string_view payload) {
  WireReader reader(payload);
  for (const WireOp& op : ops) {
    switch (op.kind) {
      case WireOp::kU32:
        ASSERT_EQ(reader.u32(), static_cast<std::uint32_t>(op.number));
        break;
      case WireOp::kU64:
        ASSERT_EQ(reader.u64(), op.number);
        break;
      case WireOp::kBytes:
        ASSERT_EQ(reader.bytes(), op.first);
        break;
      case WireOp::kRecord: {
        const auto [key, value] = reader.record();
        ASSERT_EQ(key, op.first);
        ASSERT_EQ(value, op.second);
        break;
      }
    }
  }
  ASSERT_TRUE(reader.done());
}

TEST(WireFuzz, RandomOpSequencesRoundTrip) {
  Rng rng(0x517E);
  for (int round = 0; round < 100; ++round) {
    const std::vector<WireOp> ops = random_ops(rng);
    const std::string payload = encode_ops(ops);
    decode_ops(ops, payload);
    // And across the wire: the payload survives framing verbatim.
    Pair pair;
    pair.left->send({MessageType::kReducePullDone, payload});
    const auto message = pair.right->recv();
    ASSERT_TRUE(message.has_value());
    decode_ops(ops, message->payload);
  }
}

TEST(WireFuzz, EveryStrictTruncationThrowsBeforeCompleting) {
  Rng rng(0x7A11);
  for (int round = 0; round < 20; ++round) {
    const std::vector<WireOp> ops = random_ops(rng);
    const std::string payload = encode_ops(ops);
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      // A strict prefix can satisfy some leading ops but never all of
      // them: the remaining bytes run out and the reader must throw the
      // typed error rather than fabricate values.
      EXPECT_THROW(
          decode_ops(ops, std::string_view(payload).substr(0, cut)),
          IoError)
          << "round=" << round << " cut=" << cut;
    }
  }
}

TEST(WireFuzz, BytesLengthBeyondRemainingIsIoError) {
  Rng rng(0x1E47);
  for (int round = 0; round < 32; ++round) {
    WireWriter writer;
    const std::size_t available = rng.uniform_index(16);
    // Declare more bytes than follow; the reader must reject the length
    // against `remaining()` instead of reading out of bounds.
    writer.u32(static_cast<std::uint32_t>(
        available + 1 + rng.uniform_index(1 << 20)));
    const std::string padding = random_bytes(rng, available);
    const std::string payload = writer.str() + padding;
    WireReader reader(payload);
    EXPECT_THROW(reader.bytes(), IoError) << "round=" << round;
  }
}

}  // namespace
}  // namespace dasc::ipc
