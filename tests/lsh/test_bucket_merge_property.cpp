// Property-style randomized tests of the Eq. (6) bucket-merging claim:
// across many random signature sets, the O(T*M) bit-flip neighbour merge
// produces exactly the partition of the paper's O(T^2) pairwise pass, both
// agree with a brute-force Hamming-distance-<=-1 reference, and the
// partition is independent of the order the signatures arrive in.
#include "lsh/bucket_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "lsh/signature.hpp"

namespace dasc::lsh {
namespace {

std::vector<Signature> random_signatures(Rng& rng, std::size_t n,
                                         std::size_t m) {
  std::vector<Signature> signatures(n);
  for (auto& sig : signatures) {
    sig.bits = rng() & ((m == 64) ? ~std::uint64_t{0}
                                  : ((std::uint64_t{1} << m) - 1));
  }
  return signatures;
}

/// Brute-force re-statement of the star merge with the match test spelled
/// out as "Hamming distance <= 1" — no Eq. (6) bit trick, no neighbour
/// enumeration. Mirrors the documented semantics: raw buckets largest
/// first (ties by signature value), each joins the FIRST existing group
/// whose representative is within distance 1, indices sorted, groups by
/// decreasing size.
std::vector<Bucket> reference_merge(const std::vector<Signature>& signatures) {
  struct Raw {
    Signature signature;
    std::vector<std::size_t> indices;
  };
  std::vector<Raw> raw;
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    auto it = std::find_if(raw.begin(), raw.end(), [&](const Raw& r) {
      return r.signature == signatures[i];
    });
    if (it == raw.end()) {
      raw.push_back({signatures[i], {i}});
    } else {
      it->indices.push_back(i);
    }
  }
  std::sort(raw.begin(), raw.end(), [](const Raw& a, const Raw& b) {
    if (a.indices.size() != b.indices.size()) {
      return a.indices.size() > b.indices.size();
    }
    return a.signature.bits < b.signature.bits;
  });

  std::vector<Bucket> out;
  for (const Raw& r : raw) {
    Bucket* group = nullptr;
    for (Bucket& candidate : out) {
      if (hamming_distance(candidate.signature, r.signature) <= 1) {
        group = &candidate;
        break;
      }
    }
    if (group == nullptr) {
      out.push_back({r.signature, r.indices});
    } else {
      group->indices.insert(group->indices.end(), r.indices.begin(),
                            r.indices.end());
    }
  }
  for (auto& bucket : out) {
    std::sort(bucket.indices.begin(), bucket.indices.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Bucket& x, const Bucket& y) {
                     return x.indices.size() > y.indices.size();
                   });
  return out;
}

/// A partition as a canonical set of member-index sets (representative
/// signatures and bucket ordering abstracted away).
std::set<std::vector<std::size_t>> as_partition(
    const std::vector<Bucket>& buckets) {
  std::set<std::vector<std::size_t>> partition;
  for (const Bucket& bucket : buckets) {
    partition.insert(bucket.indices);
  }
  return partition;
}

TEST(BucketMergeProperty, Eq6TrickEqualsHammingTest) {
  Rng rng(8101);
  for (int trial = 0; trial < 20000; ++trial) {
    const Signature a{rng()};
    // Mix far pairs with engineered near pairs so both outcomes are hit.
    Signature b{rng()};
    if (trial % 3 == 0) b = a;
    if (trial % 3 == 1) b.bits = a.bits ^ (1ULL << rng.uniform_index(64));
    EXPECT_EQ(differ_by_at_most_one_bit(a, b), hamming_distance(a, b) <= 1)
        << "a=" << a.bits << " b=" << b.bits;
  }
}

TEST(BucketMergeProperty, BitFlipEqualsPairwiseAcrossRandomSets) {
  // Small m keeps the signature space dense, so merges actually happen.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(9000 + seed);
    const std::size_t m = 3 + seed % 8;          // 3..10 bits
    const std::size_t n = 20 + 11 * (seed % 9);  // 20..108 points
    const auto signatures = random_signatures(rng, n, m);
    const BucketTable table = BucketTable::from_signatures(signatures, m);

    const auto pairwise = table.merged_buckets(m - 1, MergeStrategy::kPairwise);
    const auto bitflip = table.merged_buckets(m - 1, MergeStrategy::kBitFlip);

    // Not just the same partition: the same buckets in the same order with
    // the same representative signatures.
    ASSERT_EQ(pairwise.size(), bitflip.size()) << "seed=" << seed;
    for (std::size_t b = 0; b < pairwise.size(); ++b) {
      EXPECT_EQ(pairwise[b].signature, bitflip[b].signature)
          << "seed=" << seed << " bucket=" << b;
      EXPECT_EQ(pairwise[b].indices, bitflip[b].indices)
          << "seed=" << seed << " bucket=" << b;
    }
  }
}

TEST(BucketMergeProperty, MergeEqualsBruteForceHammingReference) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(17000 + seed);
    const std::size_t m = 4 + seed % 7;  // 4..10 bits
    const std::size_t n = 15 + 13 * (seed % 8);
    const auto signatures = random_signatures(rng, n, m);
    const BucketTable table = BucketTable::from_signatures(signatures, m);

    const auto reference = reference_merge(signatures);
    for (const MergeStrategy strategy :
         {MergeStrategy::kPairwise, MergeStrategy::kBitFlip}) {
      const auto merged = table.merged_buckets(m - 1, strategy);
      ASSERT_EQ(merged.size(), reference.size()) << "seed=" << seed;
      for (std::size_t b = 0; b < merged.size(); ++b) {
        EXPECT_EQ(merged[b].indices, reference[b].indices)
            << "seed=" << seed << " bucket=" << b;
      }
    }
  }
}

TEST(BucketMergeProperty, MergedBucketsFormAPartition) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(23000 + seed);
    const std::size_t m = 3 + seed % 9;
    const std::size_t n = 10 + 17 * (seed % 7);
    const auto signatures = random_signatures(rng, n, m);
    const BucketTable table = BucketTable::from_signatures(signatures, m);

    for (const std::size_t p : {m, m - 1}) {
      const auto strategy =
          p == m ? MergeStrategy::kNone : MergeStrategy::kPairwise;
      const auto buckets = table.merged_buckets(p, strategy);
      std::vector<std::size_t> seen;
      for (const Bucket& bucket : buckets) {
        seen.insert(seen.end(), bucket.indices.begin(), bucket.indices.end());
      }
      std::sort(seen.begin(), seen.end());
      std::vector<std::size_t> expected(n);
      std::iota(expected.begin(), expected.end(), 0);
      EXPECT_EQ(seen, expected) << "seed=" << seed << " p=" << p;
    }
  }
}

TEST(BucketMergeProperty, PartitionIsIndependentOfArrivalOrder) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(31000 + seed);
    const std::size_t m = 4 + seed % 6;
    const std::size_t n = 30 + 9 * (seed % 10);
    const auto signatures = random_signatures(rng, n, m);

    // A random permutation of the arrival order.
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.uniform_index(i)]);
    }
    std::vector<Signature> shuffled(n);
    for (std::size_t i = 0; i < n; ++i) shuffled[i] = signatures[perm[i]];

    const auto base = BucketTable::from_signatures(signatures, m)
                          .merged_buckets(m - 1, MergeStrategy::kPairwise);
    auto permuted = BucketTable::from_signatures(shuffled, m)
                        .merged_buckets(m - 1, MergeStrategy::kPairwise);
    // Map the permuted run's indices back to original point ids.
    for (Bucket& bucket : permuted) {
      for (std::size_t& index : bucket.indices) index = perm[index];
      std::sort(bucket.indices.begin(), bucket.indices.end());
    }
    EXPECT_EQ(as_partition(permuted), as_partition(base)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace dasc::lsh
