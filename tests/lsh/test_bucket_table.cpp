#include "lsh/bucket_table.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "lsh/random_projection.hpp"

namespace dasc::lsh {
namespace {

std::vector<Signature> signatures_from_bits(
    const std::vector<std::uint64_t>& bits) {
  std::vector<Signature> sigs;
  sigs.reserve(bits.size());
  for (auto b : bits) sigs.push_back({b});
  return sigs;
}

void expect_partition(const std::vector<Bucket>& buckets, std::size_t n) {
  std::set<std::size_t> seen;
  for (const auto& bucket : buckets) {
    for (std::size_t idx : bucket.indices) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_EQ(seen.size(), n);
  if (!seen.empty()) {
    EXPECT_EQ(*seen.rbegin(), n - 1);
  }
}

TEST(BucketTable, GroupsIdenticalSignatures) {
  const auto table = BucketTable::from_signatures(
      signatures_from_bits({0b00, 0b01, 0b00, 0b11, 0b01}), 2);
  EXPECT_EQ(table.raw_bucket_count(), 3u);
  const auto buckets = table.raw_buckets();
  expect_partition(buckets, 5);
  // Largest first: two buckets of size 2, then one of size 1.
  EXPECT_EQ(buckets[0].indices.size(), 2u);
  EXPECT_EQ(buckets[1].indices.size(), 2u);
  EXPECT_EQ(buckets[2].indices.size(), 1u);
}

TEST(BucketTable, PairwiseMergeAtPEqualsMMinusOne) {
  // 000, 001 differ by 1 bit -> merged; 111 stays alone.
  const auto table = BucketTable::from_signatures(
      signatures_from_bits({0b000, 0b001, 0b111}), 3);
  const auto buckets = table.merged_buckets(2, MergeStrategy::kPairwise);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].indices.size(), 2u);
  expect_partition(buckets, 3);
}

TEST(BucketTable, MergeIsBoundedNotTransitive) {
  // 000 - 001 - 011 - 111 form a 1-bit chain. Star merging joins a group
  // only within 1 bit of its *representative*, so the chain splits into
  // {000, 001} and {011, 111} instead of collapsing into one bucket (a
  // transitive merge would connect the whole signature space whenever it
  // is densely occupied and destroy the approximation).
  const auto table = BucketTable::from_signatures(
      signatures_from_bits({0b000, 0b001, 0b011, 0b111}), 3);
  const auto buckets = table.merged_buckets(2, MergeStrategy::kPairwise);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].indices.size(), 2u);
  EXPECT_EQ(buckets[1].indices.size(), 2u);
}

TEST(BucketTable, FullyOccupiedSignatureSpaceDoesNotCollapse) {
  // Every 4-bit signature present: merging must still leave several
  // groups, not one giant bucket.
  std::vector<std::uint64_t> bits(16);
  std::iota(bits.begin(), bits.end(), 0);
  const auto table =
      BucketTable::from_signatures(signatures_from_bits(bits), 4);
  const auto buckets = table.merged_buckets(3, MergeStrategy::kPairwise);
  EXPECT_GT(buckets.size(), 2u);
}

TEST(BucketTable, BitFlipMatchesPairwiseForOneBit) {
  dasc::Rng rng(33);
  std::vector<Signature> sigs;
  for (int i = 0; i < 300; ++i) sigs.push_back({rng() & 0x1F});  // m = 5
  const auto table = BucketTable::from_signatures(sigs, 5);
  const auto pairwise = table.merged_buckets(4, MergeStrategy::kPairwise);
  const auto bitflip = table.merged_buckets(4, MergeStrategy::kBitFlip);
  ASSERT_EQ(pairwise.size(), bitflip.size());
  for (std::size_t b = 0; b < pairwise.size(); ++b) {
    EXPECT_EQ(pairwise[b].indices, bitflip[b].indices);
  }
}

TEST(BucketTable, BitFlipRequiresPEqualsMMinusOne) {
  const auto table =
      BucketTable::from_signatures(signatures_from_bits({0b00}), 2);
  EXPECT_THROW(table.merged_buckets(0, MergeStrategy::kBitFlip),
               dasc::InvalidArgument);
}

TEST(BucketTable, LowerPMergesMore) {
  dasc::Rng rng(34);
  std::vector<Signature> sigs;
  for (int i = 0; i < 200; ++i) sigs.push_back({rng() & 0xFF});  // m = 8
  const auto table = BucketTable::from_signatures(sigs, 8);
  std::size_t prev = table.merged_buckets(8, MergeStrategy::kNone).size();
  for (std::size_t p = 7; p >= 5; --p) {
    const std::size_t count =
        table.merged_buckets(p, MergeStrategy::kPairwise).size();
    EXPECT_LE(count, prev);
    prev = count;
  }
}

TEST(BucketTable, PZeroMergesEverything) {
  dasc::Rng rng(35);
  std::vector<Signature> sigs;
  for (int i = 0; i < 50; ++i) sigs.push_back({rng() & 0xF});
  const auto table = BucketTable::from_signatures(sigs, 4);
  const auto buckets = table.merged_buckets(0, MergeStrategy::kPairwise);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].indices.size(), 50u);
}

TEST(BucketTable, BuildFromPointsPartitionsDataset) {
  dasc::Rng rng(36);
  const data::PointSet points = data::make_uniform(500, 8, rng);
  dasc::Rng fit_rng(37);
  const auto hasher = RandomProjectionHasher::fit(
      points, 5, DimensionSelection::kTopSpan, fit_rng);
  const auto table = BucketTable::build(points, hasher);
  expect_partition(table.raw_buckets(), 500);
  expect_partition(table.merged_buckets(4, MergeStrategy::kPairwise), 500);
}

TEST(BucketTable, MergedSignatureComesFromLargestConstituent) {
  // Bucket 0b00 has 3 members, 0b01 has 1; merged signature must be 0b00.
  const auto table = BucketTable::from_signatures(
      signatures_from_bits({0b00, 0b00, 0b00, 0b01}), 2);
  const auto buckets = table.merged_buckets(1, MergeStrategy::kPairwise);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].signature.bits, 0b00u);
}

TEST(BucketTable, Eq6IdenticalSignaturesStayOneBucket) {
  // A == B makes Eq. 6's ANS = (A xor B) & (A xor B - 1) evaluate on
  // A xor B == 0; identical signatures are one raw bucket and must remain
  // exactly one merged bucket under either strategy.
  const auto table = BucketTable::from_signatures(
      signatures_from_bits({0b101, 0b101, 0b101}), 3);
  for (const auto strategy :
       {MergeStrategy::kPairwise, MergeStrategy::kBitFlip}) {
    const auto buckets = table.merged_buckets(2, strategy);
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_EQ(buckets[0].indices.size(), 3u);
    EXPECT_EQ(buckets[0].signature.bits, 0b101u);
  }
}

TEST(BucketTable, Eq6AllZeroSignatureMergesItsOneBitNeighbors) {
  // The all-zero signature exercises the A xor B - 1 underflow edge of
  // Eq. 6: 0b000 absorbs each signature exactly one bit away.
  const auto table = BucketTable::from_signatures(
      signatures_from_bits({0b000, 0b001, 0b100}), 3);
  for (const auto strategy :
       {MergeStrategy::kPairwise, MergeStrategy::kBitFlip}) {
    const auto buckets = table.merged_buckets(2, strategy);
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_EQ(buckets[0].indices.size(), 3u);
    expect_partition(buckets, 3);
  }
}

TEST(BucketTable, Eq6ExactlyTwoBitDifferenceDoesNotMerge) {
  // 0b000 vs 0b011 share P = 1 of M = 3 bits-worth of distance — two bits
  // differ, so Eq. 6 must reject the merge even though the signatures are
  // "close"; only <= 1 differing bit qualifies.
  const auto table = BucketTable::from_signatures(
      signatures_from_bits({0b000, 0b011}), 3);
  for (const auto strategy :
       {MergeStrategy::kPairwise, MergeStrategy::kBitFlip}) {
    const auto buckets = table.merged_buckets(2, strategy);
    ASSERT_EQ(buckets.size(), 2u);
    EXPECT_EQ(buckets[0].indices.size(), 1u);
    EXPECT_EQ(buckets[1].indices.size(), 1u);
  }
}

TEST(BucketTable, RejectsSignaturesAboveWidth) {
  EXPECT_THROW(
      BucketTable::from_signatures(signatures_from_bits({0b100}), 2),
      dasc::InvalidArgument);
}

TEST(BucketTable, RejectsEmptyInput) {
  EXPECT_THROW(BucketTable::from_signatures({}, 4), dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::lsh
