#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

#include <unordered_map>
#include "data/synthetic.hpp"
#include "lsh/minhash.hpp"
#include "lsh/random_projection.hpp"
#include "lsh/simhash.hpp"
#include "lsh/spectral_hash.hpp"

namespace dasc::lsh {
namespace {

TEST(AutoSignatureBits, FollowsPaperRule) {
  // M = ceil(log2 N / 2) - 1.
  EXPECT_EQ(auto_signature_bits(1024), 4u);      // ceil(10/2)-1
  EXPECT_EQ(auto_signature_bits(4096), 5u);      // ceil(12/2)-1
  EXPECT_EQ(auto_signature_bits(1 << 20), 9u);   // ceil(20/2)-1
  EXPECT_EQ(auto_signature_bits(2), 1u);         // clamped to >= 1
}

TEST(RandomProjection, HashBitFollowsAlgorithm1) {
  // One dimension, threshold 0.5: value <= threshold -> bit set.
  const RandomProjectionHasher hasher({0}, {0.5}, 1);
  const std::vector<double> low{0.3};
  const std::vector<double> high{0.7};
  EXPECT_EQ(hasher.hash(low).bits, 1ULL);
  EXPECT_EQ(hasher.hash(high).bits, 0ULL);
}

TEST(RandomProjection, FitUsesTopSpanDimensions) {
  // Dimension 1 has a large span, dimension 0 nearly none.
  std::vector<double> values;
  dasc::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    values.push_back(0.5 + 0.001 * rng.uniform());
    values.push_back(rng.uniform());
  }
  const data::PointSet points(100, 2, std::move(values));
  dasc::Rng fit_rng(12);
  const auto hasher = RandomProjectionHasher::fit(
      points, 1, DimensionSelection::kTopSpan, fit_rng);
  ASSERT_EQ(hasher.dimensions().size(), 1u);
  EXPECT_EQ(hasher.dimensions()[0], 1u);
}

TEST(RandomProjection, SpanWeightedPrefersWideDimensions) {
  std::vector<double> values;
  dasc::Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    values.push_back(0.5 + 1e-6 * rng.uniform());  // tiny span
    values.push_back(rng.uniform());               // full span
  }
  const data::PointSet points(200, 2, std::move(values));
  int wide_picked = 0;
  for (int trial = 0; trial < 50; ++trial) {
    dasc::Rng fit_rng(100 + trial);
    const auto hasher = RandomProjectionHasher::fit(
        points, 1, DimensionSelection::kSpanWeighted, fit_rng);
    if (hasher.dimensions()[0] == 1) ++wide_picked;
  }
  EXPECT_GT(wide_picked, 45);  // overwhelmingly the wide dimension
}

TEST(RandomProjection, NearbyPointsCollideMoreThanFarOnes) {
  dasc::Rng rng(14);
  data::MixtureParams params;
  params.n = 400;
  params.dim = 16;
  params.k = 4;
  params.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(params, rng);
  dasc::Rng fit_rng(15);
  const auto hasher = RandomProjectionHasher::fit(
      points, 8, DimensionSelection::kTopSpan, fit_rng);

  int same_collisions = 0;
  int cross_collisions = 0;
  int pairs = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    // i and i+4 share a component (labels repeat mod 4); i and i+1 differ.
    const auto sig_i = hasher.hash(points.point(i));
    if (sig_i == hasher.hash(points.point(i + 4))) ++same_collisions;
    if (sig_i == hasher.hash(points.point(i + 1))) ++cross_collisions;
    ++pairs;
  }
  EXPECT_GT(same_collisions, cross_collisions);
}

TEST(RandomProjection, RejectsBadConstruction) {
  EXPECT_THROW(RandomProjectionHasher({2}, {0.5}, 2),  // dim out of range
               dasc::InvalidArgument);
  EXPECT_THROW(RandomProjectionHasher({0}, {0.5, 0.6}, 1),  // size mismatch
               dasc::InvalidArgument);
  EXPECT_THROW(RandomProjectionHasher({}, {}, 1),  // empty signature
               dasc::InvalidArgument);
}

TEST(RandomProjection, HashRejectsWrongDimension) {
  const RandomProjectionHasher hasher({0}, {0.5}, 2);
  const std::vector<double> wrong{0.1};
  EXPECT_THROW(hasher.hash(wrong), dasc::InvalidArgument);
}

TEST(RandomProjection, MWiderThanDimensionalityWraps) {
  dasc::Rng rng(16);
  const data::PointSet points = data::make_uniform(50, 2, rng);
  dasc::Rng fit_rng(17);
  const auto hasher = RandomProjectionHasher::fit(
      points, 6, DimensionSelection::kTopSpan, fit_rng);
  EXPECT_EQ(hasher.bits(), 6u);
  for (std::size_t dim : hasher.dimensions()) EXPECT_LT(dim, 2u);
}

TEST(MinHash, IdenticalPointsAlwaysCollide) {
  dasc::Rng rng(18);
  const data::PointSet points = data::make_uniform(100, 8, rng);
  dasc::Rng fit_rng(19);
  const auto hasher = MinHashHasher::fit(points, 12, fit_rng);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(hasher.hash(points.point(i)), hasher.hash(points.point(i)));
  }
}

TEST(MinHash, BitsAndDimReported) {
  dasc::Rng rng(20);
  const data::PointSet points = data::make_uniform(50, 6, rng);
  dasc::Rng fit_rng(21);
  const auto hasher = MinHashHasher::fit(points, 10, fit_rng);
  EXPECT_EQ(hasher.bits(), 10u);
  EXPECT_EQ(hasher.input_dim(), 6u);
}

TEST(SimHash, SignBitSeparatesOppositePoints) {
  dasc::Rng rng(22);
  data::PointSet points(2, 4);
  for (std::size_t d = 0; d < 4; ++d) {
    points.at(0, d) = 1.0;
    points.at(1, d) = -1.0;
  }
  dasc::Rng fit_rng(23);
  const auto hasher = SimHashHasher::fit(points, 16, fit_rng);
  // Centered data: the two antipodal points must differ on every bit.
  const auto a = hasher.hash(points.point(0));
  const auto b = hasher.hash(points.point(1));
  EXPECT_EQ(hamming_distance(a, b), 16u);
}

TEST(SimHash, ClusteredPointsCollideOften) {
  dasc::Rng rng(24);
  data::MixtureParams params;
  params.n = 200;
  params.dim = 8;
  params.k = 2;
  params.cluster_stddev = 0.01;
  const data::PointSet points = data::make_gaussian_mixture(params, rng);
  dasc::Rng fit_rng(25);
  const auto hasher = SimHashHasher::fit(points, 6, fit_rng);
  int same = 0;
  int cross = 0;
  for (std::size_t i = 0; i + 2 < 100; i += 2) {
    const auto sig = hasher.hash(points.point(i));
    // i and i+2 share a component; i and i+1 do not.
    if (sig == hasher.hash(points.point(i + 2))) ++same;
    if (sig == hasher.hash(points.point(i + 1))) ++cross;
  }
  // Same-cluster pairs must collide far more often than cross-cluster
  // pairs (exact rates depend on how the random hyperplanes fall).
  EXPECT_GT(same, 10);
  EXPECT_GT(same, 3 * cross);
}


TEST(SpectralHash, BalancedPartitionOnSkewedData) {
  // The paper's motivation for data-dependent hashing: heavily skewed
  // data. 90% of points in one clump defeats threshold hashing, but the
  // sinusoidal spectral-hash bits still split the clump.
  dasc::Rng rng(26);
  data::PointSet points(500, 4);
  for (std::size_t i = 0; i < 450; ++i) {
    for (std::size_t d = 0; d < 4; ++d) {
      points.at(i, d) = 0.5 + 0.05 * rng.uniform();
    }
  }
  for (std::size_t i = 450; i < 500; ++i) {
    for (std::size_t d = 0; d < 4; ++d) points.at(i, d) = rng.uniform();
  }
  const auto hasher = SpectralHashHasher::fit(points, 8);
  std::unordered_map<std::uint64_t, int> counts;
  for (std::size_t i = 0; i < points.size(); ++i) {
    ++counts[hasher.hash(points.point(i)).bits];
  }
  int biggest = 0;
  for (const auto& [sig, count] : counts) biggest = std::max(biggest, count);
  // The clump (450 points) must not land in a single signature.
  EXPECT_LT(biggest, 300);
  EXPECT_GT(counts.size(), 8u);
}

TEST(SpectralHash, DeterministicAndDimChecked) {
  dasc::Rng rng(27);
  const data::PointSet points = data::make_uniform(100, 5, rng);
  const auto hasher = SpectralHashHasher::fit(points, 10);
  EXPECT_EQ(hasher.bits(), 10u);
  EXPECT_EQ(hasher.input_dim(), 5u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(hasher.hash(points.point(i)), hasher.hash(points.point(i)));
  }
  const std::vector<double> wrong{0.1};
  EXPECT_THROW(hasher.hash(wrong), dasc::InvalidArgument);
}

TEST(SpectralHash, NearbyPointsAreCloserInHammingSpace) {
  // Spectral hashing trades exact-collision rate for balance (a dense
  // cluster is deliberately split across slabs), so locality shows up as
  // smaller Hamming distance rather than more full collisions.
  dasc::Rng rng(28);
  data::MixtureParams params;
  params.n = 300;
  params.dim = 8;
  params.k = 3;
  params.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(params, rng);
  const auto hasher = SpectralHashHasher::fit(points, 6);
  std::size_t same = 0;
  std::size_t cross = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i + 3 < 150; ++i) {
    const auto sig = hasher.hash(points.point(i));
    same += hamming_distance(sig, hasher.hash(points.point(i + 3)));
    cross += hamming_distance(sig, hasher.hash(points.point(i + 1)));
    ++pairs;
  }
  EXPECT_LT(static_cast<double>(same) / pairs,
            0.8 * static_cast<double>(cross) / pairs);
}

}  // namespace
}  // namespace dasc::lsh
