#include "lsh/signature.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dasc::lsh {
namespace {

TEST(Signature, HammingDistance) {
  EXPECT_EQ(hamming_distance({0b1010}, {0b1010}), 0u);
  EXPECT_EQ(hamming_distance({0b1010}, {0b1000}), 1u);
  EXPECT_EQ(hamming_distance({0b1111}, {0b0000}), 4u);
}

TEST(Signature, Equation6DetectsAtMostOneBitDifference) {
  EXPECT_TRUE(differ_by_at_most_one_bit({0b1010}, {0b1010}));
  EXPECT_TRUE(differ_by_at_most_one_bit({0b1010}, {0b1011}));
  EXPECT_FALSE(differ_by_at_most_one_bit({0b1010}, {0b1001}));
  EXPECT_FALSE(differ_by_at_most_one_bit({0b1111}, {0b0000}));
}

TEST(Signature, Equation6MatchesHammingDefinition) {
  // Property: for random pairs, the bit trick agrees with popcount.
  dasc::Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    const Signature a{rng()};
    const Signature b{rng() & 0x3 ? a.bits ^ (1ULL << rng.uniform_index(64))
                                  : rng()};
    EXPECT_EQ(differ_by_at_most_one_bit(a, b),
              hamming_distance(a, b) <= 1);
  }
}

TEST(Signature, ShareAtLeast) {
  // m = 4; signatures 1010 vs 1000 share 3 bits.
  EXPECT_TRUE(share_at_least({0b1010}, {0b1000}, 4, 3));
  EXPECT_FALSE(share_at_least({0b1010}, {0b1000}, 4, 4));
  EXPECT_TRUE(share_at_least({0b1010}, {0b1010}, 4, 4));
  EXPECT_THROW(share_at_least({0}, {0}, 4, 5), dasc::InvalidArgument);
}

TEST(Signature, ToStringMsbFirst) {
  EXPECT_EQ(to_string({0b101}, 3), "101");
  EXPECT_EQ(to_string({0b1}, 4), "0001");
  EXPECT_EQ(to_string({0}, 2), "00");
}

TEST(Signature, StringRoundTrip) {
  dasc::Rng rng(78);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t m = 1 + rng.uniform_index(63);
    const Signature sig{rng() & ((m == 64) ? ~0ULL : ((1ULL << m) - 1))};
    EXPECT_EQ(from_string(to_string(sig, m)), sig);
  }
}

TEST(Signature, FromStringRejectsBadInput) {
  EXPECT_THROW(from_string(""), dasc::InvalidArgument);
  EXPECT_THROW(from_string("10a1"), dasc::InvalidArgument);
  EXPECT_THROW(from_string(std::string(65, '0')), dasc::InvalidArgument);
}

TEST(Signature, HashSpreadsSequentialValues) {
  SignatureHash hasher;
  std::size_t collisions = 0;
  std::vector<std::size_t> seen;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    seen.push_back(hasher(Signature{v}) % 4096);
  }
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 1; i < seen.size(); ++i) {
    if (seen[i] == seen[i - 1]) ++collisions;
  }
  EXPECT_LT(collisions, 300u);  // far better than worst case
}

}  // namespace
}  // namespace dasc::lsh
