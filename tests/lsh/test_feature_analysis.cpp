#include "lsh/feature_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/synthetic.hpp"

namespace dasc::lsh {
namespace {

TEST(FeatureAnalysis, SpansAndMinima) {
  const data::PointSet points(3, 2, {0.0, 5.0, 1.0, 7.0, 0.5, 9.0});
  const FeatureAnalysis analysis = analyze_features(points);
  ASSERT_EQ(analysis.dims.size(), 2u);
  EXPECT_DOUBLE_EQ(analysis.dims[0].min, 0.0);
  EXPECT_DOUBLE_EQ(analysis.dims[0].span, 1.0);
  EXPECT_DOUBLE_EQ(analysis.dims[1].min, 5.0);
  EXPECT_DOUBLE_EQ(analysis.dims[1].span, 4.0);
}

TEST(FeatureAnalysis, SelectionProbabilityIsEq4) {
  const data::PointSet points(2, 2, {0.0, 0.0, 1.0, 3.0});
  const FeatureAnalysis analysis = analyze_features(points);
  // spans are 1 and 3 -> probabilities 0.25 and 0.75.
  EXPECT_DOUBLE_EQ(analysis.selection_probability[0], 0.25);
  EXPECT_DOUBLE_EQ(analysis.selection_probability[1], 0.75);
}

TEST(FeatureAnalysis, ProbabilitiesSumToOne) {
  dasc::Rng rng(7);
  const data::PointSet points = data::make_uniform(200, 10, rng);
  const FeatureAnalysis analysis = analyze_features(points);
  double total = 0.0;
  for (double p : analysis.selection_probability) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(FeatureAnalysis, HistogramCountsAllPoints) {
  dasc::Rng rng(8);
  const data::PointSet points = data::make_uniform(500, 3, rng);
  const FeatureAnalysis analysis = analyze_features(points);
  for (const auto& dim : analysis.dims) {
    ASSERT_EQ(dim.histogram.size(), kHistogramBins);
    std::size_t total = 0;
    for (std::size_t c : dim.histogram) total += c;
    EXPECT_EQ(total, 500u);
  }
}

TEST(FeatureAnalysis, ThresholdFollowsEq5) {
  // Dimension values concentrated in [0, 0.5]; the sparsest bin is in the
  // upper half, so the threshold must land at a bin edge >= 0.5... unless
  // an empty bin occurs earlier. Construct data with exactly one sparse
  // region: values in [0, 0.45] and [0.55, 1.0], nothing in the middle.
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back(0.45 * i / 50.0);
    values.push_back(0.55 + 0.45 * i / 50.0);
  }
  const std::size_t n = values.size();
  const data::PointSet points(n, 1, std::move(values));
  const FeatureAnalysis analysis = analyze_features(points);
  const double threshold = analysis.dims[0].threshold;
  // The empty bin covers (0.45, 0.55); Eq. 5 sets the threshold at the
  // lower edge of the smallest-count bin.
  EXPECT_GE(threshold, 0.40);
  EXPECT_LE(threshold, 0.60);
}

TEST(FeatureAnalysis, ThresholdWithinDimensionRange) {
  dasc::Rng rng(9);
  const data::PointSet points = data::make_uniform(300, 6, rng);
  const FeatureAnalysis analysis = analyze_features(points);
  for (const auto& dim : analysis.dims) {
    EXPECT_GE(dim.threshold, dim.min);
    EXPECT_LE(dim.threshold, dim.min + dim.span);
  }
}

TEST(FeatureAnalysis, DimensionsBySpanIsDescending) {
  const data::PointSet points(2, 3, {0.0, 0.0, 0.0, 2.0, 5.0, 1.0});
  const FeatureAnalysis analysis = analyze_features(points);
  const auto order = analysis.dimensions_by_span();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 2u);
}

TEST(FeatureAnalysis, DegenerateConstantDataset) {
  const data::PointSet points(3, 2, {1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  const FeatureAnalysis analysis = analyze_features(points);
  EXPECT_DOUBLE_EQ(analysis.selection_probability[0], 0.5);
  EXPECT_DOUBLE_EQ(analysis.selection_probability[1], 0.5);
}

TEST(FeatureAnalysis, RejectsEmptyDataset) {
  EXPECT_THROW(analyze_features(data::PointSet()), dasc::InvalidArgument);
}

TEST(ThresholdForRank, RankZeroMatchesEq5Threshold) {
  dasc::Rng rng(10);
  const data::PointSet points = data::make_uniform(400, 3, rng);
  const FeatureAnalysis analysis = analyze_features(points);
  for (const auto& dim : analysis.dims) {
    EXPECT_DOUBLE_EQ(threshold_for_rank(dim, 0), dim.threshold);
  }
}

TEST(ThresholdForRank, RanksAreDistinctCuts) {
  // Data with two dense modes and wide gaps: successive ranks must land on
  // different bin edges (no duplicate bits for repeated dimension picks).
  std::vector<double> values;
  dasc::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    values.push_back(0.1 + 0.02 * rng.uniform());
    values.push_back(0.9 + 0.02 * rng.uniform());
  }
  const std::size_t n = values.size();
  const data::PointSet points(n, 1, std::move(values));
  const FeatureAnalysis analysis = analyze_features(points);
  const double t0 = threshold_for_rank(analysis.dims[0], 0);
  const double t1 = threshold_for_rank(analysis.dims[0], 1);
  const double t2 = threshold_for_rank(analysis.dims[0], 2);
  EXPECT_NE(t0, t1);
  EXPECT_NE(t1, t2);
  EXPECT_NE(t0, t2);
}

TEST(ThresholdForRank, TieCountBinsSpreadApart) {
  // One dense blob in the middle: all outer bins are empty (tied counts).
  // The first two ranks must not be adjacent bins.
  std::vector<double> values;
  dasc::Rng rng(12);
  for (int i = 0; i < 300; ++i) values.push_back(0.5 + 0.01 * rng.uniform());
  values.push_back(0.0);  // pin the range
  values.push_back(1.0);
  const std::size_t n = values.size();
  const data::PointSet points(n, 1, std::move(values));
  const FeatureAnalysis analysis = analyze_features(points);
  const double t0 = threshold_for_rank(analysis.dims[0], 0);
  const double t1 = threshold_for_rank(analysis.dims[0], 1);
  EXPECT_GT(std::abs(t0 - t1), 2.5 / static_cast<double>(kHistogramBins));
}

TEST(ThresholdForRank, WrapsModuloBinCount) {
  dasc::Rng rng(13);
  const data::PointSet points = data::make_uniform(100, 1, rng);
  const FeatureAnalysis analysis = analyze_features(points);
  EXPECT_DOUBLE_EQ(threshold_for_rank(analysis.dims[0], 0),
                   threshold_for_rank(analysis.dims[0], kHistogramBins));
}

}  // namespace
}  // namespace dasc::lsh
