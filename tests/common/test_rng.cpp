#include "common/rng.hpp"

#include "common/error.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace dasc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(2.0, 1.0), InvalidArgument);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const auto idx = rng.uniform_index(7);
    ASSERT_LT(idx, 7u);
    ++counts[idx];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // rough uniformity
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(17);
  EXPECT_THROW(rng.normal(0.0, -1.0), InvalidArgument);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(19);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(19);
  EXPECT_THROW(rng.weighted_index({}), InvalidArgument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), InvalidArgument);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace dasc
