#include "common/log.hpp"

#include <gtest/gtest.h>

namespace dasc {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, EmittingBelowThresholdDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  log_line(LogLevel::kDebug, "suppressed");
  DASC_LOG(kDebug) << "also suppressed " << 42;
  SUCCEED();
}

TEST(Log, StreamMacroFormatsArbitraryTypes) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);  // keep test output clean
  DASC_LOG(kDebug) << "n=" << 5 << " f=" << 1.5 << " s=" << std::string("x");
  SUCCEED();
}

}  // namespace
}  // namespace dasc
