// MetricsRegistry under concurrent writers: JSON export and snapshots must
// be safe to call while worker threads are hammering counters, timers, and
// gauges — and the final values after the writers join must be exact.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace dasc {
namespace {

TEST(MetricsConcurrentExport, ExportWhileWritersAreActive) {
  MetricsRegistry registry;
  constexpr std::size_t kWriters = 4;
  constexpr std::int64_t kIterations = 20000;

  // Pre-create every instrument so the export loop below can assert their
  // presence from its very first document (creation itself is exercised by
  // WritersRacingInstrumentCreation).
  registry.counter("export.shared");
  registry.timer("export.latency");
  registry.gauge("export.depth");
  for (std::size_t w = 0; w < kWriters; ++w) {
    registry.counter("export.writer." + std::to_string(w));
  }

  std::atomic<bool> start{false};
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, &start, &done, w] {
      while (!start.load()) std::this_thread::yield();
      auto& shared = registry.counter("export.shared");
      auto& own = registry.counter("export.writer." + std::to_string(w));
      auto& latency = registry.timer("export.latency");
      auto& depth = registry.gauge("export.depth");
      for (std::int64_t i = 0; i < kIterations; ++i) {
        shared.add();
        own.add();
        latency.record_nanos(100);
        depth.set_max(i);
      }
      done.fetch_add(1);
    });
  }

  // Export continuously while the writers run. Every export must be a
  // well-formed document over some consistent-at-read instrument states —
  // no crash, no torn names, monotone counter reads.
  start.store(true);
  std::int64_t last_shared = 0;
  std::size_t exports = 0;
  while (done.load() < kWriters) {
    const std::string json = metrics::to_json(registry);
    EXPECT_FALSE(json.empty());
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("export.shared"), std::string::npos);
    const auto counters = registry.counters_snapshot();
    const auto it = counters.find("export.shared");
    ASSERT_NE(it, counters.end());
    EXPECT_GE(it->second, last_shared);  // counters only grow
    last_shared = it->second;
    ++exports;
  }
  for (auto& writer : writers) writer.join();
  EXPECT_GT(exports, 0u);

  // After the join every instrument is exact.
  EXPECT_EQ(registry.counter_value("export.shared"),
            static_cast<std::int64_t>(kWriters) * kIterations);
  for (std::size_t w = 0; w < kWriters; ++w) {
    EXPECT_EQ(registry.counter_value("export.writer." + std::to_string(w)),
              kIterations);
  }
  EXPECT_EQ(registry.timer_count("export.latency"),
            kWriters * static_cast<std::size_t>(kIterations));
  EXPECT_EQ(registry.gauge_value("export.depth"), kIterations - 1);

  // And the exported document reflects those exact values.
  const std::string final_json = metrics::to_json(registry);
  EXPECT_NE(final_json.find("\"export.shared\": " +
                            std::to_string(static_cast<std::int64_t>(kWriters) *
                                           kIterations)),
            std::string::npos)
      << final_json;
}

TEST(MetricsConcurrentExport, ConcurrentReadersAgreeAfterQuiescence) {
  MetricsRegistry registry;
  registry.counter("quiesce.count").add(42);
  registry.timer("quiesce.time").record_nanos(5'000'000);
  registry.gauge("quiesce.peak").set_max(7);

  std::vector<std::string> documents(8);
  std::vector<std::thread> readers;
  readers.reserve(documents.size());
  for (auto& document : documents) {
    readers.emplace_back(
        [&registry, &document] { document = metrics::to_json(registry); });
  }
  for (auto& reader : readers) reader.join();
  for (const auto& document : documents) {
    EXPECT_EQ(document, documents.front());
  }
}

TEST(MetricsConcurrentExport, WritersRacingInstrumentCreation) {
  // First touch of a name creates the instrument; many threads racing on
  // the SAME new names must agree on one instance per name.
  MetricsRegistry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::int64_t kNames = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (std::int64_t name = 0; name < kNames; ++name) {
        registry.counter("race." + std::to_string(name)).add();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::int64_t name = 0; name < kNames; ++name) {
    EXPECT_EQ(registry.counter_value("race." + std::to_string(name)),
              static_cast<std::int64_t>(kThreads));
  }
}

}  // namespace
}  // namespace dasc
