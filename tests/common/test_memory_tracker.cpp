#include "common/memory_tracker.hpp"

#include <gtest/gtest.h>

namespace dasc {
namespace {

TEST(MemoryTracker, AddAndSubBalance) {
  const std::size_t before = MemoryTracker::current();
  MemoryTracker::add(1000);
  EXPECT_EQ(MemoryTracker::current(), before + 1000);
  MemoryTracker::sub(1000);
  EXPECT_EQ(MemoryTracker::current(), before);
}

TEST(MemoryTracker, PeakTracksHighWaterMark) {
  MemoryTracker::reset_peak();
  const std::size_t base = MemoryTracker::peak();
  MemoryTracker::add(5000);
  MemoryTracker::sub(5000);
  EXPECT_GE(MemoryTracker::peak(), base + 5000);
}

TEST(MemoryTracker, ResetPeakDropsToCurrent) {
  MemoryTracker::add(100);
  MemoryTracker::reset_peak();
  EXPECT_EQ(MemoryTracker::peak(), MemoryTracker::current());
  MemoryTracker::sub(100);
}

TEST(ScopedAllocation, RegistersAndReleases) {
  const std::size_t before = MemoryTracker::current();
  {
    ScopedAllocation alloc(256);
    EXPECT_EQ(MemoryTracker::current(), before + 256);
  }
  EXPECT_EQ(MemoryTracker::current(), before);
}

TEST(ScopedAllocation, MoveTransfersOwnership) {
  const std::size_t before = MemoryTracker::current();
  {
    ScopedAllocation a(128);
    ScopedAllocation b = std::move(a);
    EXPECT_EQ(MemoryTracker::current(), before + 128);  // not doubled
  }
  EXPECT_EQ(MemoryTracker::current(), before);
}

TEST(ScopedAllocation, MoveAssignReleasesOldFootprint) {
  const std::size_t before = MemoryTracker::current();
  {
    ScopedAllocation a(100);
    ScopedAllocation b(200);
    b = std::move(a);
    EXPECT_EQ(MemoryTracker::current(), before + 100);
  }
  EXPECT_EQ(MemoryTracker::current(), before);
}

TEST(ScopedAllocation, ResizeAdjustsBothDirections) {
  const std::size_t before = MemoryTracker::current();
  ScopedAllocation alloc(100);
  alloc.resize(300);
  EXPECT_EQ(MemoryTracker::current(), before + 300);
  alloc.resize(50);
  EXPECT_EQ(MemoryTracker::current(), before + 50);
}

}  // namespace
}  // namespace dasc
