#include "common/stopwatch.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace dasc {
namespace {

TEST(Stopwatch, ElapsedIsNonNegativeAndMonotonic) {
  Stopwatch clock;
  const double t1 = clock.seconds();
  const double t2 = clock.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(Stopwatch, MeasuresSleep) {
  Stopwatch clock;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(clock.millis(), 15.0);
  EXPECT_LT(clock.seconds(), 5.0);
}

TEST(Stopwatch, ResetRestartsFromZero) {
  Stopwatch clock;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  clock.reset();
  EXPECT_LT(clock.millis(), 15.0);
}

TEST(Stopwatch, MillisMatchesSeconds) {
  Stopwatch clock;
  const double s = clock.seconds();
  const double ms = clock.millis();
  EXPECT_GE(ms, s * 1e3 * 0.5);  // sampled twice, allow slack
}

}  // namespace
}  // namespace dasc
