#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace dasc {
namespace {

TEST(MetricsRegistry, CounterTimerGaugeBasics) {
  MetricsRegistry registry;
  registry.counter("events").add();
  registry.counter("events").add(41);
  EXPECT_EQ(registry.counter_value("events"), 42);

  registry.timer("stage").record_nanos(1'500'000);  // 1.5 ms
  registry.timer("stage").record_seconds(0.0005);   // +0.5 ms
  EXPECT_EQ(registry.timer_count("stage"), 2);
  EXPECT_NEAR(registry.timer_total_ms("stage"), 2.0, 1e-9);

  registry.gauge("peak").set(10);
  registry.gauge("peak").set_max(7);  // lower: keeps 10
  EXPECT_EQ(registry.gauge_value("peak"), 10);
  registry.gauge("peak").set_max(25);
  EXPECT_EQ(registry.gauge_value("peak"), 25);
}

TEST(MetricsRegistry, MissingNamesReadZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter_value("absent"), 0);
  EXPECT_EQ(registry.timer_count("absent"), 0);
  EXPECT_EQ(registry.timer_total_ms("absent"), 0.0);
  EXPECT_EQ(registry.gauge_value("absent"), 0);
  EXPECT_TRUE(registry.counters_snapshot().empty());
}

TEST(MetricsRegistry, InstrumentReferencesAreStable) {
  MetricsRegistry registry;
  MetricsRegistry::Counter& counter = registry.counter("c");
  // Creating many more instruments must not invalidate the reference.
  for (int i = 0; i < 100; ++i) {
    registry.counter("c" + std::to_string(i));
  }
  counter.add(5);
  EXPECT_EQ(registry.counter_value("c"), 5);
}

TEST(MetricsRegistry, ConcurrentUpdatesFromPoolThreads) {
  MetricsRegistry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10'000;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Mix find-or-create races with hot-path updates.
        registry.counter("shared").add();
        registry.timer("shared").record_nanos(1000);
        registry.gauge("shared").set_max(
            static_cast<std::int64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(registry.counter_value("shared"),
            static_cast<std::int64_t>(kThreads * kPerThread));
  EXPECT_EQ(registry.timer_count("shared"),
            static_cast<std::int64_t>(kThreads * kPerThread));
  EXPECT_NEAR(registry.timer_total_ms("shared"),
              kThreads * kPerThread * 1e-3, 1e-6);
  EXPECT_EQ(registry.gauge_value("shared"),
            static_cast<std::int64_t>(kThreads * kPerThread - 1));
}

TEST(MetricsRegistry, ParallelForInstrumentation) {
  // The shape every pipeline stage uses: one ScopedTimer per task on the
  // shared pool, counters accumulated across tasks.
  MetricsRegistry registry;
  parallel_for(0, 64, 4, [&](std::size_t /*i*/) {
    ScopedTimer timer(&registry, "stage");
    registry.counter("tasks").add();
  });
  EXPECT_EQ(registry.counter_value("tasks"), 64);
  EXPECT_EQ(registry.timer_count("stage"), 64);
  EXPECT_GE(registry.timer_total_ms("stage"), 0.0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsReferences) {
  MetricsRegistry registry;
  MetricsRegistry::Counter& counter = registry.counter("c");
  counter.add(3);
  registry.timer("t").record_nanos(42);
  registry.gauge("g").set(9);

  registry.reset();
  EXPECT_EQ(registry.counter_value("c"), 0);
  EXPECT_EQ(registry.timer_count("t"), 0);
  EXPECT_EQ(registry.timer_total_ms("t"), 0.0);
  EXPECT_EQ(registry.gauge_value("g"), 0);

  counter.add(1);  // the old reference still feeds the same instrument
  EXPECT_EQ(registry.counter_value("c"), 1);
}

TEST(ScopedTimer, RecordsOneSamplePerScope) {
  MetricsRegistry registry;
  {
    ScopedTimer timer(&registry, "scope");
  }
  EXPECT_EQ(registry.timer_count("scope"), 1);
  EXPECT_GE(registry.timer_total_ms("scope"), 0.0);
}

TEST(ScopedTimer, NestedScopesAccumulateIndependently) {
  MetricsRegistry registry;
  {
    ScopedTimer outer(&registry, "outer");
    {
      ScopedTimer inner(&registry, "inner");
    }
    {
      ScopedTimer inner(&registry, "inner");
    }
  }
  EXPECT_EQ(registry.timer_count("outer"), 1);
  EXPECT_EQ(registry.timer_count("inner"), 2);
  // The outer scope strictly contains both inner scopes.
  EXPECT_GE(registry.timer_total_ms("outer"),
            registry.timer_total_ms("inner"));
}

TEST(ScopedTimer, StopIsIdempotent) {
  MetricsRegistry registry;
  ScopedTimer timer(&registry, "once");
  timer.stop();
  timer.stop();  // second stop and destructor must not double-record
  EXPECT_EQ(registry.timer_count("once"), 1);
}

TEST(ScopedTimer, NullRegistryIsSafe) {
  ScopedTimer named(nullptr, "ignored");
  ScopedTimer direct(static_cast<MetricsRegistry::Timer*>(nullptr));
  named.stop();
  direct.stop();  // must not crash or record anywhere
}

TEST(MetricsJson, EmptyRegistrySchema) {
  MetricsRegistry registry;
  EXPECT_EQ(metrics::to_json(registry),
            "{\n"
            "  \"counters\": {},\n"
            "  \"timers_ms\": {},\n"
            "  \"gauges\": {}\n"
            "}\n");
}

TEST(MetricsJson, StableSortedOutput) {
  MetricsRegistry registry;
  // Insert out of order; the JSON must come out key-sorted.
  registry.counter("zeta").add(2);
  registry.counter("alpha").add(1);
  registry.timer("stage").record_nanos(1'500'000);
  registry.gauge("peak").set(77);

  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"alpha\": 1,\n"
      "    \"zeta\": 2\n"
      "  },\n"
      "  \"timers_ms\": {\n"
      "    \"stage\": {\"count\": 1, \"total_ms\": 1.500}\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"peak\": 77\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(metrics::to_json(registry), expected);
  // Byte-stable: serializing twice yields the identical string.
  EXPECT_EQ(metrics::to_json(registry), expected);
}

TEST(MetricsJson, EscapesAwkwardNames) {
  MetricsRegistry registry;
  registry.counter("quote\"back\\slash").add(1);
  const std::string json = metrics::to_json(registry);
  EXPECT_NE(json.find("\"quote\\\"back\\\\slash\": 1"), std::string::npos);
}

TEST(MetricsJson, WriteJsonRoundTrips) {
  MetricsRegistry registry;
  registry.counter("n").add(3);
  const std::string path =
      testing::TempDir() + "/dasc_metrics_roundtrip.json";
  metrics::write_json(registry, path);

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, metrics::to_json(registry));
}

TEST(MetricsJson, WriteJsonThrowsOnBadPath) {
  MetricsRegistry registry;
  EXPECT_THROW(metrics::write_json(registry, "/no/such/dir/metrics.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace dasc
