// Spool-buffer unit tests: page boundary splits, budget enforcement,
// stable external merge, typed errors, and CRC detection of on-disk
// tampering (DESIGN.md section 12).
#include "common/spool.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"

namespace dasc {
namespace {

using KvList = std::vector<std::pair<std::string, std::string>>;

KvList drain(const SpoolBuffer& spool, bool sorted) {
  KvList records;
  const SpoolVisitor visit = [&](std::string_view key,
                                 std::string_view value) {
    records.emplace_back(std::string(key), std::string(value));
  };
  if (sorted) {
    spool.for_each_sorted(visit);
  } else {
    spool.for_each(visit);
  }
  return records;
}

TEST(SpoolPager, RoundTripsPagesWithChecksums) {
  SpoolConfig config;
  SpoolPager pager(config);
  const std::string a(1000, 'a');
  const std::string b = "short";
  EXPECT_EQ(pager.write_page(a), 0u);
  EXPECT_EQ(pager.write_page(b), 1u);
  EXPECT_EQ(pager.pages(), 2u);
  EXPECT_EQ(pager.read_page(1), b);
  EXPECT_EQ(pager.read_page(0), a);  // out-of-order reads are fine
  EXPECT_THROW(pager.read_page(2), InvalidArgument);
}

TEST(SpoolPager, SpillFileIsNeverVisibleByPath) {
  // The spill file is unlinked right after creation, so its path never
  // resolves — not even while the pager is alive and paging through it —
  // and a SIGKILLed process cannot strand it on disk.
  std::string path;
  {
    SpoolConfig config;
    SpoolPager pager(config);
    pager.write_page("payload");
    path = pager.file_path();
    EXPECT_FALSE(path.empty());
    EXPECT_FALSE(std::ifstream(path).good());
    EXPECT_EQ(pager.read_page(0), "payload");  // data lives on via the fd
  }
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(SpoolBuffer, AppendOrderRoundTripAcrossPageBoundaries) {
  SpoolConfig config;
  config.page_bytes = 64;  // tiny pages: records straddle many seals
  KvList expected;
  SpoolBuffer spool(config);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::string value(static_cast<std::size_t>(i % 23), 'v');
    spool.append(key, value);
    expected.emplace_back(key, value);
  }
  spool.finish();
  // Zero budget spilled every sealed page.
  EXPECT_GT(spool.pages_spilled(), 1u);
  EXPECT_EQ(spool.records(), 200u);
  EXPECT_EQ(drain(spool, /*sorted=*/false), expected);
  // Re-reading gives the same answer (pages are immutable once sealed).
  EXPECT_EQ(drain(spool, /*sorted=*/false), expected);
}

TEST(SpoolBuffer, BudgetKeepsResidentPagesInRam) {
  SpoolConfig config;
  config.page_bytes = 64;
  config.budget_bytes = 1 << 20;  // everything fits: nothing spills
  SpoolBuffer spool(config);
  for (int i = 0; i < 100; ++i) {
    spool.append("k" + std::to_string(i), "value");
  }
  spool.finish();
  EXPECT_EQ(spool.pages_spilled(), 0u);
  EXPECT_TRUE(spool.file_path().empty());
  EXPECT_GT(spool.resident_bytes(), 0u);
}

TEST(SpoolBuffer, SortedMergeMatchesGlobalStableSort) {
  SpoolConfig config;
  config.page_bytes = 96;  // many single-page runs
  config.sort_on_seal = true;
  config.fan_in = 2;  // force multi-pass external merge
  SpoolBuffer spool(config);
  KvList expected;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    // Few distinct keys -> heavy duplication, the stable-order stress.
    const std::string key = "k" + std::to_string(rng() % 7);
    const std::string value = "v" + std::to_string(i);
    spool.append(key, value);
    expected.emplace_back(key, value);
  }
  spool.finish();
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  EXPECT_EQ(drain(spool, /*sorted=*/true), expected);
  // The sorted walk is const and repeatable.
  EXPECT_EQ(drain(spool, /*sorted=*/true), expected);
}

TEST(SpoolBuffer, SortedMergeIdenticalAcrossBudgets) {
  // The determinism contract: the budget decides where pages live, never
  // what they contain or how they merge.
  KvList reference;
  for (const std::size_t budget : {std::size_t{0}, std::size_t{256},
                                   std::size_t{1} << 20}) {
    SpoolConfig config;
    config.page_bytes = 128;
    config.budget_bytes = budget;
    config.sort_on_seal = true;
    SpoolBuffer spool(config);
    Rng rng(7);
    for (int i = 0; i < 300; ++i) {
      spool.append("key" + std::to_string(rng() % 11),
                   "payload" + std::to_string(i));
    }
    spool.finish();
    const KvList got = drain(spool, /*sorted=*/true);
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference) << "budget=" << budget;
    }
  }
}

TEST(SpoolBuffer, RecordLargerThanPageIsTypedError) {
  SpoolConfig config;
  config.page_bytes = 32;
  SpoolBuffer spool(config);
  // Framed size is 8 + key + value; 32-byte pages cannot hold this.
  EXPECT_THROW(spool.append("key", std::string(64, 'x')), InvalidArgument);
  // A record that exactly fits is accepted.
  spool.append("k", std::string(23, 'y'));
  spool.finish();
  EXPECT_EQ(spool.records(), 1u);
}

TEST(SpoolBuffer, MisuseIsTypedError) {
  SpoolConfig config;
  SpoolBuffer spool(config);
  spool.append("k", "v");
  EXPECT_THROW(spool.for_each([](std::string_view, std::string_view) {}),
               InvalidArgument);  // before finish
  spool.finish();
  EXPECT_THROW(spool.append("k2", "v2"), InvalidArgument);  // after finish
  EXPECT_THROW(
      spool.for_each_sorted([](std::string_view, std::string_view) {}),
      InvalidArgument);  // sorted walk without sort_on_seal
}

TEST(SpoolBuffer, ZeroBudgetAccountingMatchesShuffleConvention) {
  SpoolConfig config;
  SpoolBuffer spool(config);
  spool.append("ab", "cde");  // 2 + 3 + 2 framing = 7
  spool.finish();
  EXPECT_EQ(spool.record_bytes(), 7u);
  EXPECT_EQ(spool.pages_spilled(), 1u);
}

TEST(SpoolFaults, InjectedPageIoRetriesAndCounts) {
  MetricsRegistry registry;
  FaultInjector injector(
      FaultPlan::parse("seed=3;spill.page_io:nth=2:max=4:kind=corrupt"),
      &registry);
  SpoolConfig config;
  config.page_bytes = 64;
  config.faults = &injector;
  config.metrics = &registry;
  SpoolBuffer spool(config);
  KvList expected;
  for (int i = 0; i < 120; ++i) {
    spool.append("k" + std::to_string(i), "v");
    expected.emplace_back("k" + std::to_string(i), "v");
  }
  spool.finish();
  EXPECT_EQ(drain(spool, /*sorted=*/false), expected);
  const auto fired = static_cast<std::int64_t>(injector.fired("spill.page_io"));
  EXPECT_GT(fired, 0);
  // Every injected fault failed exactly one attempt, and every failed
  // attempt was retried exactly once.
  EXPECT_EQ(registry.counter_value("retry.spill_page_io"), fired);
  EXPECT_EQ(registry.counter_value("fault.injected.spill.page_io"), fired);
  EXPECT_GT(registry.gauge_value("spill.bytes_written"), 0);
  EXPECT_GT(registry.gauge_value("spill.bytes_read"), 0);
  EXPECT_GT(registry.gauge_value("spill.pages"), 0);
  EXPECT_GT(registry.timer_count("spill.page_io"), 0);
}

TEST(SpoolFaults, ExhaustedAttemptsAreIoError) {
  MetricsRegistry registry;
  // Every call fails and max_attempts is 2: writes can never succeed.
  FaultInjector injector(FaultPlan::parse("seed=1;spill.page_io:nth=1"),
                         &registry);
  SpoolConfig config;
  config.max_attempts = 2;
  config.faults = &injector;
  config.metrics = &registry;
  SpoolBuffer spool(config);
  spool.append("k", "v");
  EXPECT_THROW(spool.finish(), IoError);
  EXPECT_EQ(registry.counter_value("retry.spill_page_io"), 1);
}

TEST(SpoolFaults, OnDiskTamperingIsCaughtByCrc) {
  SpoolConfig config;
  SpoolBuffer spool(config);
  const std::string value(500, 'z');
  spool.append("key", value);
  spool.finish();
  ASSERT_EQ(spool.pages_spilled(), 1u);
  // The spill file is unlinked, so tampering goes through its descriptor:
  // flip one payload byte behind the spool's back (offset 16 skips the
  // page header).
  const int fd = spool.spill_fd();
  ASSERT_GE(fd, 0);
  char byte = 0;
  ASSERT_EQ(::pread(fd, &byte, 1, 20), 1);
  byte = static_cast<char>(byte ^ 0x7F);
  ASSERT_EQ(::pwrite(fd, &byte, 1, 20), 1);
  EXPECT_THROW(drain(spool, /*sorted=*/false), IoError);
}

}  // namespace
}  // namespace dasc
