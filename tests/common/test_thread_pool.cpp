#include "common/thread_pool.hpp"

#include "common/error.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dasc {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, FutureRethrowsTaskException) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), InvalidArgument);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(0, 1000, 4, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, SupportsNonZeroBegin) {
  std::atomic<long> sum{0};
  parallel_for(10, 20, 3, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ParallelFor, EmptyRangeIsNoOp) {
  bool called = false;
  parallel_for(5, 5, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<int> order;
  parallel_for(0, 10, 1, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // sequential order preserved
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 100, 4,
                   [](std::size_t i) {
                     if (i == 42) throw std::runtime_error("bad index");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, RejectsInvertedRange) {
  EXPECT_THROW(parallel_for(10, 5, 2, [](std::size_t) {}), InvalidArgument);
}

TEST(ParallelFor, MoreThreadsThanWorkStillCorrect) {
  std::atomic<int> counter{0};
  parallel_for(0, 3, 16, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(AdmissionGate, UnlimitedGateTracksPeaks) {
  AdmissionGate gate(0, 0);
  gate.acquire(100);
  gate.acquire(300);
  EXPECT_EQ(gate.peak_tasks(), 2u);
  EXPECT_EQ(gate.peak_bytes(), 400u);
  gate.release(100);
  gate.release(300);
  gate.acquire(50);
  gate.release(50);
  // Peaks are lifetime high-water marks, not current occupancy.
  EXPECT_EQ(gate.peak_tasks(), 2u);
  EXPECT_EQ(gate.peak_bytes(), 400u);
}

TEST(AdmissionGate, TaskBudgetSerializesWorkers) {
  // With a one-task budget, concurrent acquirers must never overlap.
  AdmissionGate gate(1, 0);
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  parallel_for(0, 32, 8, [&](std::size_t) {
    gate.acquire(10);
    if (inside.fetch_add(1) != 0) overlapped = true;
    inside.fetch_sub(1);
    gate.release(10);
  });
  EXPECT_FALSE(overlapped.load());
  EXPECT_EQ(gate.peak_tasks(), 1u);
  EXPECT_EQ(gate.peak_bytes(), 10u);
}

TEST(AdmissionGate, ByteBudgetCapsResidentBytes) {
  AdmissionGate gate(0, 100);
  std::atomic<bool> over_budget{false};
  std::atomic<std::size_t> resident{0};
  parallel_for(0, 24, 6, [&](std::size_t) {
    gate.acquire(60);  // any two requests exceed the 100-byte budget
    if (resident.fetch_add(60) + 60 > 100) over_budget = true;
    resident.fetch_sub(60);
    gate.release(60);
  });
  EXPECT_FALSE(over_budget.load());
  EXPECT_EQ(gate.peak_bytes(), 60u);
}

TEST(AdmissionGate, OversizedRequestAdmittedWhenEmpty) {
  // A single request larger than the whole byte budget must not deadlock:
  // it is admitted alone once the gate drains.
  AdmissionGate gate(0, 100);
  gate.acquire(500);
  EXPECT_EQ(gate.peak_bytes(), 500u);
  gate.release(500);
}

TEST(AdmissionGate, ReleaseWithoutAcquireThrows) {
  AdmissionGate gate(2, 0);
  EXPECT_THROW(gate.release(1), InvalidArgument);
}

}  // namespace
}  // namespace dasc
