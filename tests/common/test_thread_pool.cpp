#include "common/thread_pool.hpp"

#include "common/error.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dasc {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, FutureRethrowsTaskException) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), InvalidArgument);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(0, 1000, 4, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, SupportsNonZeroBegin) {
  std::atomic<long> sum{0};
  parallel_for(10, 20, 3, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ParallelFor, EmptyRangeIsNoOp) {
  bool called = false;
  parallel_for(5, 5, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<int> order;
  parallel_for(0, 10, 1, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // sequential order preserved
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 100, 4,
                   [](std::size_t i) {
                     if (i == 42) throw std::runtime_error("bad index");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, RejectsInvertedRange) {
  EXPECT_THROW(parallel_for(10, 5, 2, [](std::size_t) {}), InvalidArgument);
}

TEST(ParallelFor, MoreThreadsThanWorkStillCorrect) {
  std::atomic<int> counter{0};
  parallel_for(0, 3, 16, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

}  // namespace
}  // namespace dasc
