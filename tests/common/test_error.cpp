#include "common/error.hpp"

#include <gtest/gtest.h>

namespace dasc {
namespace {

TEST(Error, ExpectPassesOnTrueCondition) {
  EXPECT_NO_THROW(DASC_EXPECT(1 + 1 == 2, "fine"));
}

TEST(Error, ExpectThrowsInvalidArgument) {
  EXPECT_THROW(DASC_EXPECT(false, "bad input"), InvalidArgument);
}

TEST(Error, EnsureThrowsInternalError) {
  EXPECT_THROW(DASC_ENSURE(false, "broken invariant"), InternalError);
}

TEST(Error, MessageCarriesFileAndText) {
  try {
    DASC_EXPECT(false, "my message");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my message"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, InvalidArgumentIsNotInternalError) {
  try {
    DASC_EXPECT(false, "x");
  } catch (const InternalError&) {
    FAIL() << "wrong exception type";
  } catch (const InvalidArgument&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace dasc
