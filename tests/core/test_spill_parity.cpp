// The out-of-core invariant (DESIGN.md section 12): labels are
// bit-identical with spilling forced on (tiny budget) vs off, across
// consumers, thread counts, and backends — and the tiny budget really
// does move bytes through disk.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "core/dasc_clusterer.hpp"
#include "core/dasc_mapreduce.hpp"
#include "core/dasc_streaming.hpp"
#include "data/synthetic.hpp"

namespace dasc {
namespace {

data::PointSet parity_points() {
  Rng rng(310);
  data::MixtureParams params;
  params.n = 240;
  params.dim = 8;
  params.k = 4;
  params.cluster_stddev = 0.03;
  return data::make_gaussian_mixture(params, rng);
}

core::DascParams parity_params(std::size_t spill_budget, std::size_t threads,
                               core::GramBackendPolicy backend,
                               MetricsRegistry* metrics) {
  core::DascParams params;
  params.k = 4;
  params.m = 6;
  params.threads = threads;
  params.spill_budget_bytes = spill_budget;
  params.gram_backend = backend;
  params.metrics = metrics;
  return params;
}

std::vector<int> run_batch(const data::PointSet& points,
                           const core::DascParams& params) {
  Rng rng(77);
  return core::dasc_cluster(points, params, rng).labels;
}

TEST(SpillParity, BatchLabelsIdenticalAcrossBudgetsAndThreads) {
  const data::PointSet points = parity_points();
  const std::vector<int> ram = run_batch(
      points, parity_params(0, 1, core::GramBackendPolicy::kAuto, nullptr));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t budget : {std::size_t{1}, std::size_t{64} << 10}) {
      MetricsRegistry registry;
      const std::vector<int> spilled = run_batch(
          points, parity_params(budget, threads,
                                core::GramBackendPolicy::kAuto, &registry));
      EXPECT_EQ(spilled, ram) << "threads=" << threads
                              << " budget=" << budget;
      if (budget == 1) {
        // Every dense block is over a 1-byte budget: the run must have
        // actually gone through disk.
        EXPECT_GT(registry.counter_value("pipeline.blocks_spilled"), 0);
        EXPECT_GT(registry.gauge_value("spill.bytes_written"), 0);
        EXPECT_EQ(registry.gauge_value("spill.bytes_written"),
                  registry.gauge_value("spill.bytes_read"));
        EXPECT_GT(registry.gauge_value("spill.pages"), 0);
        EXPECT_GT(registry.timer_count("spill.page_io"), 0);
      }
    }
  }
}

TEST(SpillParity, BlocksSpilledCounterIsThreadCountInvariant) {
  const data::PointSet points = parity_points();
  std::int64_t reference = -1;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    MetricsRegistry registry;
    run_batch(points, parity_params(1, threads,
                                    core::GramBackendPolicy::kAuto,
                                    &registry));
    const std::int64_t spilled =
        registry.counter_value("pipeline.blocks_spilled");
    EXPECT_GT(spilled, 0);
    if (reference < 0) {
      reference = spilled;
    } else {
      EXPECT_EQ(spilled, reference);
    }
  }
}

TEST(SpillParity, StreamingLabelsIdenticalUnderTinyBudget) {
  const data::PointSet points = parity_points();
  const auto run = [&](std::size_t budget, MetricsRegistry* metrics) {
    Rng rng(77);
    return core::dasc_cluster_streaming(
               points,
               parity_params(budget, 1, core::GramBackendPolicy::kAuto,
                             metrics),
               rng)
        .labels;
  };
  MetricsRegistry registry;
  EXPECT_EQ(run(1, &registry), run(0, nullptr));
  EXPECT_GT(registry.counter_value("pipeline.blocks_spilled"), 0);
}

TEST(SpillParity, NystromBackendLabelsIdenticalUnderTinyBudget) {
  // Factored buckets never pre-build a dense block, so they never spill —
  // parity must still hold with the knob set.
  const data::PointSet points = parity_points();
  const std::vector<int> ram = run_batch(
      points,
      parity_params(0, 1, core::GramBackendPolicy::kNystrom, nullptr));
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    EXPECT_EQ(run_batch(points,
                        parity_params(1, threads,
                                      core::GramBackendPolicy::kNystrom,
                                      nullptr)),
              ram);
  }
}

TEST(SpillParity, MapReduceLabelsIdenticalAndShuffleSpills) {
  const data::PointSet points = parity_points();
  const auto run = [&](std::size_t budget, MetricsRegistry* metrics) {
    core::MapReduceDascParams mr;
    mr.dasc = parity_params(budget, 1, core::GramBackendPolicy::kAuto,
                            metrics);
    mr.conf.num_reducers = 3;
    mr.conf.split_records = 60;
    mr.conf.physical_threads = 1;
    Rng rng(77);
    return core::dasc_cluster_mapreduce(points, mr, rng).labels;
  };
  const std::vector<int> ram = run(0, nullptr);
  MetricsRegistry registry;
  EXPECT_EQ(run(1, &registry), ram);
  // The 1-byte budget forces both the shuffle spool and the reduce-side
  // Gram blocks through disk.
  EXPECT_GT(registry.gauge_value("spill.bytes_written"), 0);
  EXPECT_GT(registry.counter_value("pipeline.blocks_spilled"), 0);
}

}  // namespace
}  // namespace dasc
