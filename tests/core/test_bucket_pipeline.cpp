#include "core/bucket_pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/dasc_clusterer.hpp"
#include "core/dasc_streaming.hpp"
#include "data/synthetic.hpp"

namespace dasc::core {
namespace {

data::PointSet blobs(std::size_t n, std::size_t k, std::uint64_t seed) {
  dasc::Rng rng(seed);
  data::MixtureParams params;
  params.n = n;
  params.dim = 12;
  params.k = k;
  params.cluster_stddev = 0.03;
  return data::make_gaussian_mixture(params, rng);
}

std::vector<lsh::Bucket> toy_buckets(const std::vector<std::size_t>& sizes) {
  std::vector<lsh::Bucket> buckets(sizes.size());
  std::size_t next = 0;
  for (std::size_t b = 0; b < sizes.size(); ++b) {
    for (std::size_t i = 0; i < sizes[b]; ++i) {
      buckets[b].indices.push_back(next++);
    }
  }
  return buckets;
}

TEST(PlanBucketJobs, DisjointLabelRangesAndTotals) {
  const auto buckets = toy_buckets({5, 3, 7});
  dasc::Rng rng(21);
  const auto jobs = plan_bucket_jobs(buckets, 6, 15, rng);

  ASSERT_EQ(jobs.size(), 3u);
  std::size_t expected_offset = 0;
  for (std::size_t b = 0; b < jobs.size(); ++b) {
    EXPECT_EQ(jobs[b].index, b);
    EXPECT_EQ(jobs[b].k_bucket,
              bucket_cluster_count(6, buckets[b].indices.size(), 15));
    EXPECT_EQ(jobs[b].label_offset, expected_offset);
    expected_offset += jobs[b].k_bucket;
  }
  EXPECT_EQ(total_label_count(jobs), expected_offset);
}

TEST(PlanBucketJobs, SeedsDeterministicAndDistinct) {
  const auto buckets = toy_buckets({4, 4, 4, 4});
  dasc::Rng r1(33);
  dasc::Rng r2(33);
  const auto a = plan_bucket_jobs(buckets, 4, 16, r1);
  const auto b = plan_bucket_jobs(buckets, 4, 16, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
  // Seeds are overwhelmingly distinct draws, not a repeated constant.
  EXPECT_NE(a[0].seed, a[1].seed);

  const auto seedless = plan_bucket_jobs(buckets, 4, 16);
  for (const auto& job : seedless) EXPECT_EQ(job.seed, 0u);
}

TEST(BucketPipeline, BuildsEachBlockOnceWithPlannedShape) {
  const data::PointSet points = blobs(60, 3, 501);
  const auto buckets = toy_buckets({20, 25, 15});
  const auto jobs = plan_bucket_jobs(buckets, 3, 60);

  BucketPipelineOptions options;
  options.sigma = 0.5;
  options.threads = 4;
  std::vector<int> calls(buckets.size(), 0);
  std::mutex mutex;
  const auto stats = run_bucket_pipeline(
      points, buckets, jobs, options,
      [&](linalg::DenseMatrix&& block, const lsh::Bucket& bucket,
          const BucketJob& job) {
        std::lock_guard lock(mutex);
        ++calls[job.index];
        EXPECT_EQ(block.rows(), bucket.indices.size());
        EXPECT_EQ(block.cols(), bucket.indices.size());
      });

  EXPECT_TRUE(std::all_of(calls.begin(), calls.end(),
                          [](int c) { return c == 1; }));
  EXPECT_EQ(stats.buckets, buckets.size());
  EXPECT_EQ(stats.peak_block_bytes, linalg::gram_entry_bytes(25u * 25u));
  EXPECT_EQ(stats.total_block_bytes,
            linalg::gram_entry_bytes(20u * 20u + 25u * 25u + 15u * 15u));
  EXPECT_GE(stats.peak_inflight_bytes, stats.peak_block_bytes);
  EXPECT_LE(stats.peak_inflight_bytes, stats.total_block_bytes);
}

TEST(BucketPipeline, OneBlockBudgetNeverHoldsTwoBlocks) {
  const data::PointSet points = blobs(90, 3, 502);
  const auto buckets = toy_buckets({30, 30, 30});
  const auto jobs = plan_bucket_jobs(buckets, 3, 90);

  BucketPipelineOptions options;
  options.sigma = 0.5;
  options.threads = 4;
  options.max_inflight_blocks = 1;
  const auto stats = run_bucket_pipeline(
      points, buckets, jobs, options,
      [](linalg::DenseMatrix&&, const lsh::Bucket&, const BucketJob&) {});

  // Serialized blocks: the in-flight high-water equals ONE block.
  EXPECT_EQ(stats.peak_inflight_bytes, linalg::gram_entry_bytes(30u * 30u));
  EXPECT_EQ(stats.peak_block_bytes, linalg::gram_entry_bytes(30u * 30u));
}

TEST(BucketPipeline, ConsumerExceptionPropagates) {
  const data::PointSet points = blobs(20, 2, 503);
  const auto buckets = toy_buckets({10, 10});
  const auto jobs = plan_bucket_jobs(buckets, 2, 20);
  BucketPipelineOptions options;
  options.sigma = 0.5;
  options.threads = 2;
  EXPECT_THROW(
      run_bucket_pipeline(points, buckets, jobs, options,
                          [](linalg::DenseMatrix&&, const lsh::Bucket&,
                             const BucketJob&) {
                            throw std::runtime_error("consumer failed");
                          }),
      std::runtime_error);
}

TEST(DascDeterminism, LabelsIdenticalAcrossThreadCounts) {
  const data::PointSet points = blobs(400, 5, 504);
  DascParams params;
  params.k = 5;
  params.m = 8;

  params.threads = 1;
  dasc::Rng r1(77);
  const DascResult serial = dasc_cluster(points, params, r1);

  params.threads = 8;
  dasc::Rng r8(77);
  const DascResult threaded = dasc_cluster(points, params, r8);

  ASSERT_GT(serial.stats.merged_buckets, 2u);
  EXPECT_EQ(serial.labels, threaded.labels);
  EXPECT_EQ(serial.num_clusters, threaded.num_clusters);
}

TEST(DascDeterminism, LabelsIdenticalAcrossInflightBudgets) {
  const data::PointSet points = blobs(300, 4, 505);
  DascParams params;
  params.k = 4;
  params.m = 8;
  params.threads = 8;

  dasc::Rng r1(78);
  const DascResult unlimited = dasc_cluster(points, params, r1);

  params.max_inflight_blocks = 1;
  dasc::Rng r2(78);
  const DascResult one_block = dasc_cluster(points, params, r2);

  EXPECT_EQ(unlimited.labels, one_block.labels);
}

TEST(DascDeterminism, ThreadedBatchMatchesStreaming) {
  const data::PointSet points = blobs(300, 4, 506);
  DascParams params;
  params.k = 4;
  params.m = 8;
  params.threads = 8;

  dasc::Rng r1(79);
  const DascResult batch = dasc_cluster(points, params, r1);
  dasc::Rng r2(79);
  const StreamingDascResult streaming =
      dasc_cluster_streaming(points, params, r2);

  EXPECT_EQ(batch.labels, streaming.labels);
  EXPECT_EQ(batch.num_clusters, streaming.num_clusters);
}

TEST(DascDeterminism, OneBlockBudgetBoundsPeakGramBytes) {
  const data::PointSet points = blobs(400, 4, 507);
  DascParams params;
  params.k = 4;
  params.m = 8;
  params.threads = 8;
  params.max_inflight_blocks = 1;

  dasc::Rng rng(80);
  const DascResult result = dasc_cluster(points, params, rng);

  ASSERT_GT(result.stats.merged_buckets, 2u);
  const std::size_t largest_block_bytes = linalg::gram_entry_bytes(
      result.stats.largest_bucket * result.stats.largest_bucket);
  EXPECT_EQ(result.stats.peak_block_bytes, largest_block_bytes);
  EXPECT_LE(result.stats.peak_inflight_bytes, largest_block_bytes);
  // The budget changed memory, not the answer: all labels valid.
  for (int label : result.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(result.num_clusters));
  }
}

}  // namespace
}  // namespace dasc::core
