#include "core/approx_svm.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "svm/rbf_classifier.hpp"

namespace dasc::core {
namespace {

data::PointSet blobs(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  data::MixtureParams params;
  params.n = n;
  params.dim = 8;
  params.k = k;
  params.cluster_stddev = 0.04;
  return data::make_gaussian_mixture(params, rng);
}

TEST(ApproxSvm, AccuracyComparableToExactSvm) {
  const data::PointSet points = blobs(240, 4, 911);

  ApproxSvmParams approx_params;
  approx_params.dasc.m = 8;
  Rng r1(1);
  const ApproxSvm approx = ApproxSvm::train(points, approx_params, r1);

  Rng r2(2);
  const svm::RbfClassifier exact =
      svm::RbfClassifier::train(points, {}, r2);

  const double approx_acc = approx.accuracy(points);
  const double exact_acc = exact.accuracy(points);
  EXPECT_GT(approx_acc, 0.93);
  EXPECT_GT(approx_acc, exact_acc - 0.05);
}

TEST(ApproxSvm, UsesLessKernelMemoryThanExact) {
  const data::PointSet points = blobs(300, 6, 912);
  ApproxSvmParams params;
  params.dasc.m = 10;
  Rng rng(3);
  const ApproxSvm model = ApproxSvm::train(points, params, rng);
  EXPECT_LT(model.gram_bytes(),
            linalg::gram_entry_bytes(points.size() * points.size()));
  EXPECT_GT(model.num_buckets(), 1u);
}

TEST(ApproxSvm, RoutesQueriesToTrainingBuckets) {
  // Training points must route to the bucket they were trained in, so
  // training accuracy is well-defined bucket-locally.
  const data::PointSet points = blobs(120, 3, 913);
  ApproxSvmParams params;
  params.dasc.m = 6;
  Rng rng(4);
  const ApproxSvm model = ApproxSvm::train(points, params, rng);
  // Smoke: all predictions are valid class labels.
  for (std::size_t i = 0; i < points.size(); ++i) {
    const int predicted = model.predict(points.point(i));
    EXPECT_GE(predicted, 0);
    EXPECT_LT(predicted, 3);
  }
}

TEST(ApproxSvm, SingleClassBucketsPredictTheirClass) {
  // Well-separated tight blobs: most buckets are pure and become constant
  // predictors; accuracy must stay near-perfect.
  Rng data_rng(914);
  data::MixtureParams mix;
  mix.n = 150;
  mix.dim = 8;
  mix.k = 3;
  mix.cluster_stddev = 0.01;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);
  ApproxSvmParams params;
  params.dasc.m = 10;
  Rng rng(5);
  const ApproxSvm model = ApproxSvm::train(points, params, rng);
  EXPECT_GT(model.accuracy(points), 0.98);
}

TEST(ApproxSvm, BalancingCapSupported) {
  const data::PointSet points = blobs(200, 2, 915);
  ApproxSvmParams params;
  params.dasc.m = 4;
  params.dasc.max_bucket_points = 50;
  Rng rng(6);
  const ApproxSvm model = ApproxSvm::train(points, params, rng);
  EXPECT_LE(model.stats().largest_bucket, 50u);
  EXPECT_GT(model.accuracy(points), 0.9);
}

TEST(ApproxSvm, RejectsBadInputs) {
  Rng rng(7);
  ApproxSvmParams params;
  EXPECT_THROW(ApproxSvm::train(data::PointSet(), params, rng),
               dasc::InvalidArgument);
  data::PointSet unlabelled(10, 2);
  EXPECT_THROW(ApproxSvm::train(unlabelled, params, rng),
               dasc::InvalidArgument);
  const data::PointSet points = blobs(40, 2, 916);
  params.dasc.family = HashFamily::kSimHash;
  EXPECT_THROW(ApproxSvm::train(points, params, rng),
               dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::core
