#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dasc::core {
namespace {

TEST(CostModel, ClusterCountFit) {
  EXPECT_DOUBLE_EQ(model_cluster_count(1024.0), 17.0);
  EXPECT_DOUBLE_EQ(model_cluster_count(std::pow(2.0, 20)), 17.0 * 11.0);
  EXPECT_DOUBLE_EQ(model_cluster_count(2.0), 1.0);  // floored
}

TEST(CostModel, BucketCountFollowsAutoRule) {
  // M = ceil(log2 N / 2) - 1; B = 2^M.
  EXPECT_DOUBLE_EQ(model_bucket_count(1024.0), 16.0);         // M = 4
  EXPECT_DOUBLE_EQ(model_bucket_count(std::pow(2.0, 20)), 512.0);  // M = 9
}

TEST(CostModel, DascBeatsScForLargeN) {
  for (double exp = 20.0; exp <= 30.0; exp += 2.0) {
    const double n = std::pow(2.0, exp);
    const double b = model_bucket_count(n);
    EXPECT_LT(dasc_time_seconds(n, b), sc_time_seconds(n)) << "N = 2^" << exp;
    EXPECT_LT(dasc_memory_bytes(n, b), sc_memory_bytes(n)) << "N = 2^" << exp;
  }
}

TEST(CostModel, ReductionRatioApproachesOneOverB) {
  // Eq. (8): with the dominant quadratic term, alpha -> 1/B.
  const double n = std::pow(2.0, 26);
  const double b = 256.0;
  const double alpha = time_reduction_ratio(n, b);
  EXPECT_NEAR(alpha, 1.0 / b, 0.5 / b);
}

TEST(CostModel, MemoryIsEq12) {
  EXPECT_DOUBLE_EQ(dasc_memory_bytes(1000.0, 10.0), 4.0 * 1000.0 * 1000.0 / 10.0);
  EXPECT_DOUBLE_EQ(sc_memory_bytes(1000.0), 4.0 * 1000.0 * 1000.0);
}

TEST(CostModel, TimeScalesSubQuadraticallyWithAutoBuckets) {
  // Fig. 1's claim: doubling N raises DASC time by less than 4x when B
  // grows with N (B ~ sqrt(N) gives ~N^1.5 growth).
  const double t1 = dasc_time_seconds(std::pow(2.0, 24),
                                      model_bucket_count(std::pow(2.0, 24)));
  const double t2 = dasc_time_seconds(std::pow(2.0, 25),
                                      model_bucket_count(std::pow(2.0, 25)));
  EXPECT_LT(t2 / t1, 3.5);
  EXPECT_GT(t2 / t1, 1.5);
}

TEST(CostModel, MoreMachinesReduceTimeLinearly) {
  CostModelParams small;
  small.machines = 16;
  CostModelParams big;
  big.machines = 64;
  const double n = std::pow(2.0, 22);
  const double b = model_bucket_count(n);
  EXPECT_NEAR(dasc_time_seconds(n, b, small) / dasc_time_seconds(n, b, big),
              4.0, 1e-9);
}

TEST(CollisionProbability, WithinUnitInterval) {
  for (double exp = 20.0; exp <= 30.0; exp += 1.0) {
    for (double m = 5.0; m <= 35.0; m += 5.0) {
      const double p = collision_probability(std::pow(2.0, exp), m);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(CollisionProbability, DecreasesWithMoreHashBits) {
  // Fig. 2: more hash functions -> lower collision probability.
  const double n = std::pow(2.0, 20);
  double prev = 1.1;
  for (double m = 5.0; m <= 35.0; m += 5.0) {
    const double p = collision_probability(n, m);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(CollisionProbability, MildlyIncreasesWithDatasetSizeAtFixedM) {
  // Eq. (19) as printed gives ln P ~ -M/K(N): since K grows with N, the
  // probability *rises* slightly with dataset size. (The paper's prose
  // claims the opposite direction; its own formula does not — see
  // EXPERIMENTS.md. Either way the effect is small and every value stays
  // inside Fig. 2's 0.7-1.0 band.)
  double prev = 0.0;
  for (double exp = 20.0; exp <= 30.0; exp += 2.0) {
    const double p = collision_probability(std::pow(2.0, exp), 20.0);
    EXPECT_GT(p, prev);
    EXPECT_GT(p, 0.7);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
}

TEST(CollisionProbability, StaysHighInPaperRange) {
  // Fig. 2 plots values between ~0.7 and 1.0 for M in [5, 35].
  const double p = collision_probability(std::pow(2.0, 20), 35.0);
  EXPECT_GT(p, 0.5);
}

TEST(CostModel, RejectsBadInputs) {
  EXPECT_THROW(model_cluster_count(0.5), dasc::InvalidArgument);
  EXPECT_THROW(dasc_time_seconds(0.0, 1.0), dasc::InvalidArgument);
  EXPECT_THROW(dasc_memory_bytes(10.0, 0.0), dasc::InvalidArgument);
  EXPECT_THROW(collision_probability(1.0, 5.0), dasc::InvalidArgument);
  EXPECT_THROW(collision_probability(1024.0, 0.0), dasc::InvalidArgument);
  CostModelParams bad;
  bad.beta_seconds = 0.0;
  EXPECT_THROW(dasc_time_seconds(10.0, 2.0, bad), dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::core
