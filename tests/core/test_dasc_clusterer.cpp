#include "core/dasc_clusterer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "clustering/metrics.hpp"
#include "clustering/spectral.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"

namespace dasc::core {
namespace {

data::PointSet blobs(std::size_t n, std::size_t k, std::uint64_t seed) {
  dasc::Rng rng(seed);
  data::MixtureParams params;
  params.n = n;
  params.dim = 16;
  params.k = k;
  params.cluster_stddev = 0.03;
  return data::make_gaussian_mixture(params, rng);
}

TEST(BucketClusterCount, ProportionalAllocation) {
  // K = 10 over N = 100: a 50-point bucket gets 5 clusters.
  EXPECT_EQ(bucket_cluster_count(10, 50, 100), 5u);
  EXPECT_EQ(bucket_cluster_count(10, 100, 100), 10u);
  // Tiny buckets always get at least one cluster.
  EXPECT_EQ(bucket_cluster_count(10, 1, 100), 1u);
  // Never more clusters than points.
  EXPECT_EQ(bucket_cluster_count(100, 3, 100), 3u);
}

TEST(BucketClusterCount, RejectsBadInputs) {
  EXPECT_THROW(bucket_cluster_count(5, 10, 0), dasc::InvalidArgument);
  EXPECT_THROW(bucket_cluster_count(5, 11, 10), dasc::InvalidArgument);
}

TEST(ClusterBucket, TrivialCases) {
  dasc::Rng rng(1);
  EXPECT_TRUE(cluster_bucket(linalg::DenseMatrix(0, 0), 2, 64, rng).empty());
  const auto single = cluster_bucket(linalg::DenseMatrix(1, 1, 1.0), 1, 64,
                                     rng);
  EXPECT_EQ(single, std::vector<int>{0});
  const auto pair =
      cluster_bucket(linalg::DenseMatrix(2, 2, 1.0), 2, 64, rng);
  EXPECT_EQ(pair, (std::vector<int>{0, 0}));  // n <= 2 collapses to one
}

TEST(DascCluster, LabelsCoverDatasetWithValidIds) {
  const data::PointSet points = blobs(300, 4, 211);
  DascParams params;
  params.k = 4;
  dasc::Rng rng(2);
  const DascResult result = dasc_cluster(points, params, rng);
  ASSERT_EQ(result.labels.size(), 300u);
  for (int label : result.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(result.num_clusters));
  }
  EXPECT_GE(result.num_clusters, 1u);
  EXPECT_EQ(result.requested_k, 4u);
}

TEST(DascCluster, HighAccuracyOnSeparatedBlobs) {
  const data::PointSet points = blobs(400, 4, 212);
  DascParams params;
  params.k = 4;
  dasc::Rng rng(3);
  const DascResult result = dasc_cluster(points, params, rng);
  // DASC may produce more clusters than K (clusters split across buckets);
  // Hungarian-matched accuracy still reflects how pure the clusters are.
  EXPECT_GT(clustering::clustering_accuracy(result.labels, points.labels()),
            0.9);
}

TEST(DascCluster, CloseToFullSpectralClustering) {
  // Fig. 3/4 property: the approximation does not significantly hurt
  // clustering quality relative to exact SC on the same data. Purity is
  // the right yardstick because DASC may split one ground-truth cluster
  // across buckets (sum of per-bucket K's exceeds K), which a one-to-one
  // matching would count as an error even when every cluster is pure.
  const data::PointSet points = blobs(250, 3, 213);

  DascParams params;
  params.k = 3;
  dasc::Rng dasc_rng(4);
  const DascResult dasc = dasc_cluster(points, params, dasc_rng);
  const double dasc_purity =
      clustering::clustering_purity(dasc.labels, points.labels());

  clustering::SpectralParams sc_params;
  sc_params.k = 3;
  dasc::Rng sc_rng(5);
  const auto sc = clustering::spectral_cluster(points, sc_params, sc_rng);
  const double sc_purity =
      clustering::clustering_purity(sc.labels, points.labels());

  EXPECT_GT(dasc_purity, sc_purity - 0.1);
  EXPECT_GT(dasc_purity, 0.9);
}

TEST(DascCluster, UsesLessGramMemoryThanFull) {
  const data::PointSet points = blobs(500, 8, 214);
  DascParams params;
  params.k = 8;
  dasc::Rng rng(6);
  const DascResult result = dasc_cluster(points, params, rng);
  EXPECT_LT(result.stats.gram_bytes, result.stats.full_gram_bytes);
}

TEST(DascCluster, DeterministicForSameSeed) {
  const data::PointSet points = blobs(200, 4, 215);
  DascParams params;
  params.k = 4;
  dasc::Rng r1(7);
  dasc::Rng r2(7);
  const DascResult a = dasc_cluster(points, params, r1);
  const DascResult b = dasc_cluster(points, params, r2);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

TEST(DascCluster, SingleThreadMatchesMultiThread) {
  const data::PointSet points = blobs(200, 4, 216);
  DascParams params;
  params.k = 4;
  params.threads = 1;
  dasc::Rng r1(8);
  const DascResult seq = dasc_cluster(points, params, r1);
  params.threads = 4;
  dasc::Rng r2(8);
  const DascResult par = dasc_cluster(points, params, r2);
  EXPECT_EQ(seq.labels, par.labels);
}

TEST(DascCluster, ClusterIdsAreDisjointAcrossBuckets) {
  const data::PointSet points = blobs(300, 4, 217);
  DascParams params;
  params.k = 6;
  params.m = 6;
  dasc::Rng rng(9);
  const DascResult result = dasc_cluster(points, params, rng);
  // A cluster id must never span two buckets: recompute buckets with the
  // same seed and verify each label maps into exactly one bucket.
  dasc::Rng rng2(9);
  const auto buckets = bucket_points(points, params, rng2);
  std::vector<int> bucket_of_point(points.size(), -1);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    for (std::size_t idx : buckets[b].indices) {
      bucket_of_point[idx] = static_cast<int>(b);
    }
  }
  std::map<int, std::set<int>> buckets_of_label;
  for (std::size_t i = 0; i < points.size(); ++i) {
    buckets_of_label[result.labels[i]].insert(bucket_of_point[i]);
  }
  for (const auto& [label, bucket_set] : buckets_of_label) {
    EXPECT_EQ(bucket_set.size(), 1u) << "label " << label;
  }
}

TEST(DascCluster, RejectsEmptyDataset) {
  DascParams params;
  dasc::Rng rng(10);
  EXPECT_THROW(dasc_cluster(data::PointSet(), params, rng),
               dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::core
