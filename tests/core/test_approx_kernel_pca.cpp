#include "core/approx_kernel_pca.hpp"

#include <gtest/gtest.h>

#include "clustering/kernel_pca.hpp"
#include "clustering/kmeans.hpp"
#include "clustering/metrics.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"

namespace dasc::core {
namespace {

data::PointSet blobs(std::size_t n, std::size_t k, std::uint64_t seed) {
  dasc::Rng rng(seed);
  data::MixtureParams params;
  params.n = n;
  params.dim = 12;
  params.k = k;
  params.cluster_stddev = 0.03;
  return data::make_gaussian_mixture(params, rng);
}

TEST(ApproxKernelPca, ShapeAndBucketAssignment) {
  const data::PointSet points = blobs(200, 4, 611);
  DascParams params;
  dasc::Rng rng(1);
  const ApproxKpcaResult result = approx_kernel_pca(points, 3, params, rng);
  EXPECT_EQ(result.embedding.rows(), 200u);
  EXPECT_EQ(result.embedding.cols(), 3u);
  ASSERT_EQ(result.bucket_of_point.size(), 200u);
  for (std::size_t b : result.bucket_of_point) {
    EXPECT_LT(b, result.stats.merged_buckets);
  }
}

TEST(ApproxKernelPca, EmbeddingIsClusterableLikeExactKpca) {
  // The kernel-independence claim: per-bucket KPCA embeddings should
  // support K-means clustering about as well as exact KPCA does.
  const data::PointSet points = blobs(160, 4, 612);

  DascParams params;
  params.m = 10;
  dasc::Rng rng(2);
  const ApproxKpcaResult approx = approx_kernel_pca(points, 4, params, rng);

  // Cluster the approximate embedding together with the bucket ids as an
  // extra coordinate (points in different buckets were embedded in
  // different coordinate systems, exactly like DASC's clustering step
  // treats buckets independently). Here it suffices to check per-bucket
  // consistency: within each bucket, K-means on the embedding should
  // reproduce the ground-truth labels of that bucket.
  double weighted_purity = 0.0;
  std::size_t counted = 0;
  for (std::size_t b = 0; b < approx.stats.merged_buckets; ++b) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (approx.bucket_of_point[i] == b) members.push_back(i);
    }
    if (members.size() < 8) continue;

    data::PointSet bucket_embedding(members.size(), 4);
    std::vector<int> truth(members.size());
    for (std::size_t row = 0; row < members.size(); ++row) {
      for (std::size_t c = 0; c < 4; ++c) {
        bucket_embedding.at(row, c) = approx.embedding(members[row], c);
      }
      truth[row] = points.label(members[row]);
    }
    clustering::KMeansParams km;
    km.k = std::min<std::size_t>(4, members.size());
    dasc::Rng km_rng(3);
    const auto labels = clustering::kmeans(bucket_embedding, km, km_rng);
    weighted_purity +=
        clustering::clustering_purity(labels.labels, truth) *
        static_cast<double>(members.size());
    counted += members.size();
  }
  ASSERT_GT(counted, 0u);
  EXPECT_GT(weighted_purity / static_cast<double>(counted), 0.9);
}

TEST(ApproxKernelPca, SmallBucketsPadWithZeros) {
  // p larger than some bucket: the extra components must be zero, not
  // garbage.
  const data::PointSet points = blobs(60, 3, 613);
  DascParams params;
  params.m = 12;  // many small buckets
  params.p = 12;  // no merging
  dasc::Rng rng(4);
  const ApproxKpcaResult result = approx_kernel_pca(points, 10, params, rng);
  // Find a bucket smaller than p and check its points' tail components.
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::size_t bucket_size = 0;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (result.bucket_of_point[j] == result.bucket_of_point[i]) {
        ++bucket_size;
      }
    }
    if (bucket_size < 10) {
      for (std::size_t c = bucket_size; c < 10; ++c) {
        EXPECT_DOUBLE_EQ(result.embedding(i, c), 0.0);
      }
      return;  // one witness suffices
    }
  }
  GTEST_SKIP() << "no bucket smaller than p in this draw";
}

TEST(ApproxKernelPca, GramBytesMatchClusteringPipeline) {
  const data::PointSet points = blobs(150, 3, 614);
  DascParams params;
  dasc::Rng r1(5);
  const ApproxKpcaResult kpca = approx_kernel_pca(points, 2, params, r1);
  dasc::Rng r2(5);
  ApproximatorStats stats;
  bucket_points(points, params, r2, &stats);
  EXPECT_EQ(kpca.stats.gram_bytes, stats.gram_bytes);
}

TEST(ApproxKernelPca, RejectsBadArguments) {
  DascParams params;
  dasc::Rng rng(6);
  EXPECT_THROW(approx_kernel_pca(data::PointSet(), 2, params, rng),
               dasc::InvalidArgument);
  const data::PointSet points = blobs(20, 2, 615);
  EXPECT_THROW(approx_kernel_pca(points, 0, params, rng),
               dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::core
