#include "core/dasc_streaming.hpp"

#include <gtest/gtest.h>

#include "clustering/metrics.hpp"
#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "data/synthetic.hpp"

namespace dasc::core {
namespace {

data::PointSet blobs(std::size_t n, std::size_t k, std::uint64_t seed) {
  dasc::Rng rng(seed);
  data::MixtureParams params;
  params.n = n;
  params.dim = 12;
  params.k = k;
  params.cluster_stddev = 0.03;
  return data::make_gaussian_mixture(params, rng);
}

TEST(StreamingDasc, MatchesBatchDriverExactly) {
  const data::PointSet points = blobs(300, 4, 1011);
  DascParams params;
  params.k = 4;
  params.threads = 1;

  dasc::Rng r1(9);
  const DascResult batch = dasc_cluster(points, params, r1);
  dasc::Rng r2(9);
  const StreamingDascResult streaming =
      dasc_cluster_streaming(points, params, r2);

  EXPECT_EQ(streaming.labels, batch.labels);
  EXPECT_EQ(streaming.num_clusters, batch.num_clusters);
  EXPECT_EQ(streaming.stats.merged_buckets, batch.stats.merged_buckets);
}

TEST(StreamingDasc, PeakMatrixMemoryIsBoundedByLargestBlock) {
  // The point of the streaming driver: the tracked high-water mark for
  // matrix memory stays near ONE block, not the sum of all blocks.
  const data::PointSet points = blobs(600, 6, 1012);
  DascParams params;
  params.k = 6;
  params.m = 8;

  dasc::Rng rng(10);
  MemoryTracker::reset_peak();
  const std::size_t before = MemoryTracker::current();
  const StreamingDascResult result =
      dasc_cluster_streaming(points, params, rng);
  const std::size_t peak_delta = MemoryTracker::peak() - before;

  // Tracked peak must stay well under the total approximated Gram
  // footprint whenever the data spreads over several buckets of
  // comparable size. (gram_bytes now reports actual double bytes.)
  ASSERT_GT(result.stats.merged_buckets, 2u);
  EXPECT_LT(peak_delta, result.stats.gram_bytes);
  // And it must be at least the largest single block.
  EXPECT_GE(peak_delta, result.peak_block_bytes);
}

TEST(StreamingDasc, PeakBlockBytesReported) {
  const data::PointSet points = blobs(200, 4, 1013);
  DascParams params;
  params.k = 4;
  dasc::Rng rng(11);
  const StreamingDascResult result =
      dasc_cluster_streaming(points, params, rng);
  EXPECT_EQ(result.peak_block_bytes,
            linalg::gram_entry_bytes(result.stats.largest_bucket *
                                     result.stats.largest_bucket));
}

TEST(StreamingDasc, WorksWithBalancingCap) {
  const data::PointSet points = blobs(400, 4, 1014);
  DascParams params;
  params.k = 4;
  params.m = 4;
  params.max_bucket_points = 64;
  dasc::Rng rng(12);
  const StreamingDascResult result =
      dasc_cluster_streaming(points, params, rng);
  EXPECT_LE(result.peak_block_bytes, linalg::gram_entry_bytes(64u * 64u));
  EXPECT_GT(clustering::clustering_purity(result.labels, points.labels()),
            0.9);
}

TEST(StreamingDasc, RejectsEmptyDataset) {
  DascParams params;
  dasc::Rng rng(13);
  EXPECT_THROW(dasc_cluster_streaming(data::PointSet(), params, rng),
               dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::core
