#include "core/kernel_approximator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "clustering/kernel.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"

namespace dasc::core {
namespace {

data::PointSet blobs(std::size_t n, std::size_t k, std::uint64_t seed) {
  dasc::Rng rng(seed);
  data::MixtureParams params;
  params.n = n;
  params.dim = 16;
  params.k = k;
  params.cluster_stddev = 0.03;
  return data::make_gaussian_mixture(params, rng);
}

TEST(ParamResolution, SignatureBitsAutoRule) {
  DascParams params;
  EXPECT_EQ(resolve_signature_bits(params, 1024), 4u);
  params.m = 12;
  EXPECT_EQ(resolve_signature_bits(params, 1024), 12u);
  params.m = 100;
  EXPECT_THROW(resolve_signature_bits(params, 1024), dasc::InvalidArgument);
}

TEST(ParamResolution, MergeBitsDefaultIsMMinusOne) {
  DascParams params;
  EXPECT_EQ(resolve_merge_bits(params, 8), 7u);
  EXPECT_EQ(resolve_merge_bits(params, 1), 1u);
  params.p = 5;
  EXPECT_EQ(resolve_merge_bits(params, 8), 5u);
  params.p = 9;
  EXPECT_THROW(resolve_merge_bits(params, 8), dasc::InvalidArgument);
}

TEST(ParamResolution, ClusterCountUsesWikiFit) {
  DascParams params;
  EXPECT_EQ(resolve_cluster_count(params, 1024), 17u);
  EXPECT_EQ(resolve_cluster_count(params, 512), 2u);  // clamped up to 2
  params.k = 5;
  EXPECT_EQ(resolve_cluster_count(params, 1024), 5u);
  params.k = 2000;
  EXPECT_EQ(resolve_cluster_count(params, 1024), 1024u);  // clamped to N
}

TEST(BucketPoints, PartitionsTheDataset) {
  const data::PointSet points = blobs(300, 4, 111);
  DascParams params;
  dasc::Rng rng(1);
  ApproximatorStats stats;
  const auto buckets = bucket_points(points, params, rng, &stats);

  std::set<std::size_t> seen;
  for (const auto& bucket : buckets) {
    for (std::size_t idx : bucket.indices) {
      EXPECT_TRUE(seen.insert(idx).second);
    }
  }
  EXPECT_EQ(seen.size(), 300u);
  EXPECT_EQ(stats.merged_buckets, buckets.size());
  EXPECT_GE(stats.raw_buckets, stats.merged_buckets);
  EXPECT_EQ(stats.signature_bits, 4u);  // auto for N=300 -> ceil(8.23/2)-1=4
}

TEST(ApproximateKernel, BlocksMatchDirectKernelEvaluation) {
  const data::PointSet points = blobs(150, 3, 112);
  DascParams params;
  params.sigma = 0.4;
  dasc::Rng rng(2);
  const BlockGram gram = approximate_kernel(points, params, rng);

  for (std::size_t b = 0; b < gram.num_blocks(); ++b) {
    const auto& indices = gram.bucket(b).indices;
    const linalg::DenseMatrix expected =
        clustering::gaussian_gram_subset(points, indices, 0.4);
    EXPECT_DOUBLE_EQ(gram.block(b).max_abs_diff(expected), 0.0);
  }
}

TEST(ApproximateKernel, FrobeniusNeverExceedsFullGram) {
  const data::PointSet points = blobs(200, 4, 113);
  DascParams params;
  params.sigma = 0.3;
  dasc::Rng rng(3);
  const BlockGram approx = approximate_kernel(points, params, rng);
  const linalg::DenseMatrix full =
      clustering::gaussian_gram(points, 0.3);
  // The approximation zeroes entries, so Fnorm(approx) <= Fnorm(full).
  EXPECT_LE(approx.frobenius_norm(), full.frobenius_norm() + 1e-9);
  EXPECT_GT(approx.frobenius_norm(), 0.0);
}

TEST(ApproximateKernel, ToDenseAgreesWithBlocks) {
  const data::PointSet points = blobs(80, 2, 114);
  DascParams params;
  params.sigma = 0.5;
  dasc::Rng rng(4);
  const BlockGram approx = approximate_kernel(points, params, rng);
  const linalg::DenseMatrix dense = approx.to_dense();
  EXPECT_EQ(dense.rows(), 80u);
  EXPECT_NEAR(dense.frobenius_norm(), approx.frobenius_norm(), 1e-9);
  EXPECT_TRUE(dense.is_symmetric(1e-12));
}

TEST(ApproximateKernel, StatsReflectCompression) {
  const data::PointSet points = blobs(400, 8, 115);
  DascParams params;
  params.m = 8;  // plenty of buckets
  dasc::Rng rng(5);
  ApproximatorStats stats;
  const BlockGram gram = approximate_kernel(points, params, rng, &stats);

  EXPECT_EQ(stats.gram_bytes, gram.gram_bytes());
  EXPECT_EQ(stats.full_gram_bytes, linalg::gram_entry_bytes(400u * 400u));
  EXPECT_LT(stats.gram_bytes, stats.full_gram_bytes);
  EXPECT_GT(stats.fill_ratio, 0.0);
  EXPECT_LT(stats.fill_ratio, 1.0);
  EXPECT_GE(stats.largest_bucket, 1u);
}

TEST(ApproximateKernel, MoreBitsMeansMoreBucketsAndLessMemory) {
  const data::PointSet points = blobs(500, 8, 116);
  std::size_t prev_buckets = 0;
  std::size_t prev_bytes = SIZE_MAX;
  for (std::size_t m : {2u, 4u, 8u}) {
    DascParams params;
    params.m = m;
    params.p = m;  // no merging, isolate bucket-count effect
    dasc::Rng rng(6);
    ApproximatorStats stats;
    approximate_kernel(points, params, rng, &stats);
    EXPECT_GE(stats.merged_buckets, prev_buckets);
    EXPECT_LE(stats.gram_bytes, prev_bytes);
    prev_buckets = stats.merged_buckets;
    prev_bytes = stats.gram_bytes;
  }
}

TEST(ApproximateKernel, AllHashFamiliesProduceValidPartitions) {
  const data::PointSet points = blobs(150, 3, 117);
  for (HashFamily family :
       {HashFamily::kRandomProjection, HashFamily::kMinHash,
        HashFamily::kSimHash}) {
    DascParams params;
    params.family = family;
    dasc::Rng rng(7);
    const BlockGram gram = approximate_kernel(points, params, rng);
    std::size_t covered = 0;
    for (std::size_t b = 0; b < gram.num_blocks(); ++b) {
      covered += gram.bucket(b).indices.size();
    }
    EXPECT_EQ(covered, 150u);
  }
}

TEST(BalanceBuckets, CapsEveryBucket) {
  const data::PointSet points = blobs(300, 2, 118);
  DascParams params;
  params.m = 2;  // coarse hash: guaranteed oversized buckets
  params.p = 2;
  dasc::Rng rng(8);
  auto buckets = bucket_points(points, params, rng);
  const auto balanced = balance_buckets(points, std::move(buckets), 40);

  std::set<std::size_t> seen;
  for (const auto& bucket : balanced) {
    EXPECT_LE(bucket.indices.size(), 40u);
    for (std::size_t idx : bucket.indices) {
      EXPECT_TRUE(seen.insert(idx).second);
    }
  }
  EXPECT_EQ(seen.size(), 300u);  // still a partition
}

TEST(BalanceBuckets, NoOpWhenAlreadyUnderCap) {
  const data::PointSet points = blobs(100, 4, 119);
  DascParams params;
  params.m = 8;
  dasc::Rng rng(9);
  auto buckets = bucket_points(points, params, rng);
  const std::size_t before = buckets.size();
  const auto balanced =
      balance_buckets(points, std::move(buckets), points.size());
  EXPECT_EQ(balanced.size(), before);
}

TEST(BalanceBuckets, CoincidentPointsCannotSplit) {
  // 50 identical points: the cap is unattainable; the bucket must survive
  // unsplit instead of looping forever.
  const data::PointSet points(50, 2, std::vector<double>(100, 0.5));
  std::vector<lsh::Bucket> buckets(1);
  for (std::size_t i = 0; i < 50; ++i) buckets[0].indices.push_back(i);
  const auto balanced = balance_buckets(points, std::move(buckets), 10);
  ASSERT_EQ(balanced.size(), 1u);
  EXPECT_EQ(balanced[0].indices.size(), 50u);
}

TEST(BalanceBuckets, SplitsAlongWidestDimension) {
  // Points spread along dim 1 only; the median split must produce two
  // halves separated in that dimension.
  data::PointSet points(20, 2);
  for (std::size_t i = 0; i < 20; ++i) {
    points.at(i, 0) = 0.5;
    points.at(i, 1) = static_cast<double>(i) / 20.0;
  }
  std::vector<lsh::Bucket> buckets(1);
  for (std::size_t i = 0; i < 20; ++i) buckets[0].indices.push_back(i);
  const auto balanced = balance_buckets(points, std::move(buckets), 10);
  ASSERT_EQ(balanced.size(), 2u);
  EXPECT_EQ(balanced[0].indices.size(), 10u);
  EXPECT_EQ(balanced[1].indices.size(), 10u);
  // One half holds indices 0..9, the other 10..19 (median split on dim 1).
  const auto& low = balanced[0].indices[0] == 0 ? balanced[0] : balanced[1];
  for (std::size_t pos = 0; pos < 10; ++pos) {
    EXPECT_EQ(low.indices[pos], pos);
  }
}

TEST(BalanceBuckets, OutputIsLargestFirstAndStable) {
  // The executor plans label offsets from the bucket order, so the order
  // contract matters: sizes non-increasing, and the order (including ties)
  // identical on every call with the same input.
  const data::PointSet points = blobs(300, 3, 121);
  DascParams params;
  params.m = 2;  // coarse hash: some buckets exceed the cap and split
  params.p = 2;
  dasc::Rng rng(10);
  auto run = [&points](std::vector<lsh::Bucket> input) {
    return balance_buckets(points, std::move(input), 40);
  };
  dasc::Rng rng2(10);
  const auto first = run(bucket_points(points, params, rng));
  const auto second = run(bucket_points(points, params, rng2));

  ASSERT_FALSE(first.empty());
  for (std::size_t b = 1; b < first.size(); ++b) {
    EXPECT_GE(first[b - 1].indices.size(), first[b].indices.size());
  }
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t b = 0; b < first.size(); ++b) {
    EXPECT_EQ(first[b].indices, second[b].indices);
  }
}

TEST(BalanceBuckets, RejectsTinyCap) {
  const data::PointSet points = blobs(20, 2, 120);
  EXPECT_THROW(balance_buckets(points, {}, 1), dasc::InvalidArgument);
}

TEST(ApproximateKernel, BalancingCapReducesGramBytes) {
  const data::PointSet points = blobs(400, 2, 121);
  DascParams coarse;
  coarse.m = 2;
  coarse.p = 2;
  dasc::Rng r1(10);
  ApproximatorStats without_cap;
  bucket_points(points, coarse, r1, &without_cap);

  DascParams capped = coarse;
  capped.max_bucket_points = 50;
  dasc::Rng r2(10);
  ApproximatorStats with_cap;
  bucket_points(points, capped, r2, &with_cap);

  EXPECT_LT(with_cap.gram_bytes, without_cap.gram_bytes);
  EXPECT_LE(with_cap.largest_bucket, 50u);
}

TEST(BlockGram, ValidatesConstruction) {
  // Bucket/block shape mismatch must be rejected.
  std::vector<lsh::Bucket> buckets(1);
  buckets[0].indices = {0, 1};
  std::vector<linalg::DenseMatrix> blocks;
  blocks.emplace_back(3, 3);  // wrong size
  EXPECT_THROW(BlockGram(std::move(buckets), std::move(blocks), 2),
               dasc::InvalidArgument);

  // Buckets must cover all points.
  std::vector<lsh::Bucket> partial(1);
  partial[0].indices = {0};
  std::vector<linalg::DenseMatrix> small_blocks;
  small_blocks.emplace_back(1, 1);
  EXPECT_THROW(BlockGram(std::move(partial), std::move(small_blocks), 2),
               dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::core
