#include "core/lowrank_approximator.hpp"

#include <gtest/gtest.h>

#include "clustering/kernel.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"

namespace dasc::core {
namespace {

TEST(LowRankGram, FullLandmarksReproduceExactGram) {
  // With m = N, Nystrom is exact: K~ = C W^{-1} C^T = K.
  dasc::Rng data_rng(941);
  const data::PointSet points = data::make_uniform(40, 4, data_rng);
  dasc::Rng rng(942);
  const LowRankGram approx =
      nystrom_approximate_kernel(points, 40, 0.5, rng);
  const linalg::DenseMatrix exact = clustering::gaussian_gram(points, 0.5);
  EXPECT_LT(approx.to_dense().max_abs_diff(exact), 1e-6);
  EXPECT_NEAR(approx.frobenius_norm(), exact.frobenius_norm(), 1e-6);
}

TEST(LowRankGram, FnormNeverExceedsExact) {
  dasc::Rng data_rng(943);
  const data::PointSet points = data::make_uniform(60, 4, data_rng);
  const linalg::DenseMatrix exact = clustering::gaussian_gram(points, 0.5);
  for (std::size_t m : {5u, 15u, 30u}) {
    dasc::Rng rng(944 + m);
    const LowRankGram approx =
        nystrom_approximate_kernel(points, m, 0.5, rng);
    EXPECT_LE(approx.frobenius_norm(), exact.frobenius_norm() + 1e-9)
        << "m = " << m;
    EXPECT_GT(approx.frobenius_norm(), 0.0);
  }
}

TEST(LowRankGram, MoreLandmarksImproveApproximation) {
  dasc::Rng data_rng(945);
  data::MixtureParams mix;
  mix.n = 80;
  mix.dim = 6;
  mix.k = 4;
  mix.cluster_stddev = 0.1;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);
  const linalg::DenseMatrix exact = clustering::gaussian_gram(points, 0.6);

  double prev_error = 1e300;
  for (std::size_t m : {4u, 16u, 64u}) {
    dasc::Rng rng(77);  // same landmark stream prefix
    const LowRankGram approx =
        nystrom_approximate_kernel(points, m, 0.6, rng);
    const double error = approx.to_dense().max_abs_diff(exact);
    EXPECT_LE(error, prev_error + 0.1) << "m = " << m;
    prev_error = error;
  }
}

TEST(LowRankGram, FactorFootprintIsLinearInN) {
  dasc::Rng data_rng(946);
  const data::PointSet points = data::make_uniform(100, 3, data_rng);
  dasc::Rng rng(947);
  const LowRankGram approx =
      nystrom_approximate_kernel(points, 10, 0.5, rng);
  EXPECT_LE(approx.rank(), 10u);
  EXPECT_EQ(approx.stored_entries(), 100u * approx.rank());
  EXPECT_LT(approx.gram_bytes(), linalg::gram_entry_bytes(100u * 100u));
}

TEST(LowRankGram, ApproximationIsPsd) {
  // K~ = F F^T is PSD by construction: x^T K~ x = ||F^T x||^2 >= 0.
  dasc::Rng data_rng(948);
  const data::PointSet points = data::make_uniform(30, 3, data_rng);
  dasc::Rng rng(949);
  const LowRankGram approx =
      nystrom_approximate_kernel(points, 8, 0.5, rng);
  const linalg::DenseMatrix dense = approx.to_dense();
  dasc::Rng probe(950);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(30);
    for (double& v : x) v = probe.uniform(-1.0, 1.0);
    std::vector<double> kx(30, 0.0);
    dense.matvec(x, kx);
    double quad = 0.0;
    for (std::size_t i = 0; i < 30; ++i) quad += x[i] * kx[i];
    EXPECT_GE(quad, -1e-9);
  }
}

TEST(LowRankGram, RejectsBadInputs) {
  dasc::Rng data_rng(951);
  const data::PointSet points = data::make_uniform(10, 2, data_rng);
  dasc::Rng rng(952);
  EXPECT_THROW(nystrom_approximate_kernel(points, 0, 0.5, rng),
               dasc::InvalidArgument);
  EXPECT_THROW(nystrom_approximate_kernel(points, 11, 0.5, rng),
               dasc::InvalidArgument);
  EXPECT_THROW(nystrom_approximate_kernel(points, 5, 0.5, rng, -1.0),
               dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::core
