#include "core/dasc_mapreduce.hpp"

#include <gtest/gtest.h>

#include "clustering/metrics.hpp"
#include "common/error.hpp"
#include "core/dasc_clusterer.hpp"
#include "data/dataset_io.hpp"
#include "mapreduce/virtual_cluster.hpp"
#include "data/synthetic.hpp"

namespace dasc::core {
namespace {

data::PointSet blobs(std::size_t n, std::size_t k, std::uint64_t seed) {
  dasc::Rng rng(seed);
  data::MixtureParams params;
  params.n = n;
  params.dim = 12;
  params.k = k;
  params.cluster_stddev = 0.03;
  return data::make_gaussian_mixture(params, rng);
}

TEST(MemberCodec, RoundTrip) {
  const std::vector<double> point{0.25, -1.5, 3.14159};
  const std::string encoded = encode_member(42, point);
  const auto [index, decoded] = decode_member(encoded);
  EXPECT_EQ(index, 42u);
  ASSERT_EQ(decoded.size(), 3u);
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_DOUBLE_EQ(decoded[d], point[d]);
  }
}

TEST(MemberCodec, RejectsMalformedValue) {
  EXPECT_THROW(decode_member("no separator here"), dasc::InvalidArgument);
}

TEST(MapReduceDasc, ProducesValidLabeling) {
  const data::PointSet points = blobs(200, 4, 311);
  MapReduceDascParams params;
  params.dasc.k = 4;
  dasc::Rng rng(1);
  const MapReduceDascResult result =
      dasc_cluster_mapreduce(points, params, rng);

  ASSERT_EQ(result.labels.size(), 200u);
  for (int label : result.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(result.num_clusters));
  }
  EXPECT_GT(result.num_clusters, 0u);
}

TEST(MapReduceDasc, AccuracyComparableToInProcessPipeline) {
  const data::PointSet points = blobs(300, 3, 312);

  MapReduceDascParams mr_params;
  mr_params.dasc.k = 3;
  dasc::Rng mr_rng(2);
  const auto mr = dasc_cluster_mapreduce(points, mr_params, mr_rng);
  const double mr_acc =
      clustering::clustering_accuracy(mr.labels, points.labels());

  DascParams local_params;
  local_params.k = 3;
  dasc::Rng local_rng(2);
  const auto local = dasc_cluster(points, local_params, local_rng);
  const double local_acc =
      clustering::clustering_accuracy(local.labels, points.labels());

  EXPECT_GT(mr_acc, 0.85);
  EXPECT_NEAR(mr_acc, local_acc, 0.1);
}

TEST(MapReduceDasc, JobAccountingIsPopulated) {
  const data::PointSet points = blobs(256, 4, 313);
  MapReduceDascParams params;
  params.dasc.k = 4;
  params.conf.split_records = 64;
  dasc::Rng rng(3);
  const auto result = dasc_cluster_mapreduce(points, params, rng);

  EXPECT_EQ(result.lsh_job.counters.map_input_records, 256u);
  EXPECT_EQ(result.lsh_job.counters.map_output_records, 256u);
  EXPECT_EQ(result.lsh_job.num_map_tasks, 4u);  // 256 / 64
  EXPECT_EQ(result.cluster_job.counters.reduce_input_groups,
            result.stats.merged_buckets);
  EXPECT_GT(result.simulated_seconds, 0.0);
  EXPECT_GE(result.real_seconds, 0.0);
  EXPECT_LT(result.stats.gram_bytes, result.stats.full_gram_bytes);
}

TEST(MapReduceDasc, StatsMatchInProcessBucketing) {
  const data::PointSet points = blobs(200, 4, 314);

  MapReduceDascParams mr_params;
  mr_params.dasc.k = 4;
  dasc::Rng mr_rng(4);
  const auto mr = dasc_cluster_mapreduce(points, mr_params, mr_rng);

  DascParams local_params = mr_params.dasc;
  dasc::Rng local_rng(4);
  ApproximatorStats local_stats;
  bucket_points(points, local_params, local_rng, &local_stats);

  // Same seed -> same fitted hasher -> identical bucketing statistics.
  EXPECT_EQ(mr.stats.signature_bits, local_stats.signature_bits);
  EXPECT_EQ(mr.stats.raw_buckets, local_stats.raw_buckets);
  EXPECT_EQ(mr.stats.merged_buckets, local_stats.merged_buckets);
  EXPECT_EQ(mr.stats.largest_bucket, local_stats.largest_bucket);
}

TEST(MapReduceDasc, MoreNodesReduceSimulatedTime) {
  // Run once, then reschedule the SAME measured task durations onto wider
  // clusters (re-running would compare two noisy measurements and flake).
  const data::PointSet points = blobs(512, 8, 315);
  MapReduceDascParams params;
  params.dasc.k = 8;
  params.conf.split_records = 32;
  dasc::Rng rng(5);
  const auto result = dasc_cluster_mapreduce(points, params, rng);

  auto simulated = [&](std::size_t nodes) {
    return mapreduce::makespan_lpt(result.lsh_job.map_task_seconds, nodes,
                                   4) +
           mapreduce::makespan_lpt(result.lsh_job.reduce_task_seconds,
                                   nodes, 2) +
           mapreduce::makespan_lpt(result.cluster_job.map_task_seconds,
                                   nodes, 4) +
           mapreduce::makespan_lpt(result.cluster_job.reduce_task_seconds,
                                   nodes, 2);
  };
  EXPECT_LE(simulated(16), simulated(1));
  EXPECT_GT(simulated(1), 0.0);
}

TEST(MapReduceDasc, DfsVariantMatchesInMemoryPipeline) {
  const data::PointSet points = blobs(150, 3, 317);

  // Stage the dataset in the DFS, one record per line.
  mapreduce::DfsConfig dfs_config;
  dfs_config.block_size_bytes = 2048;
  mapreduce::Dfs dfs(dfs_config);
  std::vector<std::string> lines;
  lines.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    lines.push_back(data::point_to_record(points.point(i)));
  }
  dfs.write_file("/data/points", lines);

  MapReduceDascParams params;
  params.dasc.k = 3;
  dasc::Rng r1(7);
  const auto from_dfs = dasc_cluster_mapreduce_dfs(dfs, "/data/points",
                                                   "/out/dasc", params, r1);
  dasc::Rng r2(7);
  const auto in_memory = dasc_cluster_mapreduce(points, params, r2);

  EXPECT_EQ(from_dfs.labels, in_memory.labels);
  EXPECT_EQ(from_dfs.num_clusters, in_memory.num_clusters);
  EXPECT_GT(from_dfs.lsh_job.num_map_tasks, 1u);  // block-local splits

  // The assignment landed in the DFS.
  const auto out = dfs.read_file("/out/dasc/part-r-00000");
  ASSERT_EQ(out.size(), points.size());
  EXPECT_NE(out[0].find('\t'), std::string::npos);
}

TEST(MapReduceDasc, DfsVariantRejectsBadInput) {
  mapreduce::Dfs dfs({});
  MapReduceDascParams params;
  dasc::Rng rng(8);
  EXPECT_THROW(
      dasc_cluster_mapreduce_dfs(dfs, "/missing", "/out", params, rng),
      dasc::IoError);
  dfs.write_file("/ragged", {"1.0,2.0", "3.0"});
  EXPECT_THROW(
      dasc_cluster_mapreduce_dfs(dfs, "/ragged", "/out", params, rng),
      dasc::InvalidArgument);
}

TEST(MapReduceDasc, RejectsUnsupportedHashFamily) {
  const data::PointSet points = blobs(50, 2, 316);
  MapReduceDascParams params;
  params.dasc.family = HashFamily::kMinHash;
  dasc::Rng rng(6);
  EXPECT_THROW(dasc_cluster_mapreduce(points, params, rng),
               dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::core
