// Accuracy harness for the approximate BucketEmbedder backends: each
// backend clusters the same pinned dataset with the same seed, and its
// labels are scored against the dense-exact path by adjusted Rand index.
//
// ARI floors: both backends measure ARI = 1.00 against dense on this
// pinned configuration (500 points, 4 well-separated blobs, seed 7). The
// floors are pinned below that with deliberate headroom:
//   * nystrom     >= 0.95  (landmark factorization tracks the dense
//                           embedding closely on well-separated blobs)
//   * rbf_binning >= 0.60  (the hashed one-hot grid is a much coarser
//                           kernel sketch; it is allowed to split/merge
//                           more boundary points before the gate trips)
// The floors gate regressions in the backend math, not absolute quality:
// a change that degrades a backend below its floor on this fixed seed is
// a behavior change, not noise.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "clustering/metrics.hpp"
#include "core/bucket_embedder.hpp"
#include "core/dasc_clusterer.hpp"
#include "data/synthetic.hpp"

namespace dasc::core {
namespace {

// Documented per-backend ARI-vs-dense floors for the pinned scenario.
constexpr double kNystromAriFloor = 0.95;
constexpr double kBinningAriFloor = 0.60;

data::PointSet blobs(std::size_t n, std::size_t k, std::uint64_t seed) {
  dasc::Rng rng(seed);
  data::MixtureParams params;
  params.n = n;
  params.dim = 16;
  params.k = k;
  params.cluster_stddev = 0.03;
  return data::make_gaussian_mixture(params, rng);
}

DascResult run_backend(const data::PointSet& points,
                       GramBackendPolicy backend) {
  DascParams params;
  params.k = 4;
  params.gram_backend = backend;
  dasc::Rng rng(7);  // pinned: every backend sees the identical seed
  return dasc_cluster(points, params, rng);
}

class BackendAccuracy : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kDataSeed = 311;
  data::PointSet points_ = blobs(500, 4, kDataSeed);
  DascResult dense_ = run_backend(points_, GramBackendPolicy::kDense);
};

TEST_F(BackendAccuracy, DensePathIsAccurateBaseline) {
  // The floor comparisons below are only meaningful if the dense baseline
  // itself solves the pinned problem.
  EXPECT_GT(clustering::clustering_purity(dense_.labels, points_.labels()),
            0.95);
}

TEST_F(BackendAccuracy, NystromMeetsAriFloorAgainstDense) {
  const DascResult nystrom = run_backend(points_, GramBackendPolicy::kNystrom);
  const double ari =
      clustering::adjusted_rand_index(nystrom.labels, dense_.labels);
  EXPECT_GE(ari, kNystromAriFloor)
      << "nystrom backend ARI vs dense dropped below its pinned floor";
}

TEST_F(BackendAccuracy, RbfBinningMeetsAriFloorAgainstDense) {
  const DascResult binning =
      run_backend(points_, GramBackendPolicy::kRbfBinning);
  const double ari =
      clustering::adjusted_rand_index(binning.labels, dense_.labels);
  EXPECT_GE(ari, kBinningAriFloor)
      << "rbf_binning backend ARI vs dense dropped below its pinned floor";
}

TEST_F(BackendAccuracy, AutoBelowThresholdMatchesDenseBitForBit) {
  // kAuto with every bucket under the threshold must select dense
  // everywhere, and the default run stays byte-identical to the
  // historical path.
  DascParams params;
  params.k = 4;
  params.gram_backend = GramBackendPolicy::kAuto;
  params.backend_threshold = points_.size() + 1;
  dasc::Rng rng(7);
  const DascResult automatic = dasc_cluster(points_, params, rng);
  EXPECT_EQ(automatic.labels, dense_.labels);
}

TEST_F(BackendAccuracy, ApproximateBackendsAreSeedDeterministic) {
  // The retry/chaos contract: identical seed -> identical labels.
  const DascResult a = run_backend(points_, GramBackendPolicy::kNystrom);
  const DascResult b = run_backend(points_, GramBackendPolicy::kNystrom);
  EXPECT_EQ(a.labels, b.labels);
  const DascResult c = run_backend(points_, GramBackendPolicy::kRbfBinning);
  const DascResult d = run_backend(points_, GramBackendPolicy::kRbfBinning);
  EXPECT_EQ(c.labels, d.labels);
}

TEST_F(BackendAccuracy, FactoredBackendsReportSmallerGramFootprint) {
  // Eq. 12 accounting: at 500 points per run the factored representations
  // must undercut the dense blocks' bytes.
  const DascResult nystrom = run_backend(points_, GramBackendPolicy::kNystrom);
  const DascResult binning =
      run_backend(points_, GramBackendPolicy::kRbfBinning);
  EXPECT_LT(nystrom.stats.gram_bytes, dense_.stats.gram_bytes);
  EXPECT_LT(binning.stats.gram_bytes, dense_.stats.gram_bytes);
}

}  // namespace
}  // namespace dasc::core
