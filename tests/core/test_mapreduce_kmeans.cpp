#include "core/mapreduce_kmeans.hpp"

#include <gtest/gtest.h>

#include "clustering/kmeans.hpp"
#include "clustering/metrics.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"

namespace dasc::core {
namespace {

data::PointSet blobs(std::size_t n, std::size_t k, std::uint64_t seed) {
  dasc::Rng rng(seed);
  data::MixtureParams params;
  params.n = n;
  params.dim = 8;
  params.k = k;
  params.cluster_stddev = 0.02;
  return data::make_gaussian_mixture(params, rng);
}

TEST(MapReduceKMeans, RecoversSeparatedBlobs) {
  const data::PointSet points = blobs(300, 3, 711);
  MrKMeansParams params;
  params.k = 3;
  dasc::Rng rng(1);
  const MrKMeansResult result = mapreduce_kmeans(points, params, rng);
  EXPECT_GT(clustering::clustering_accuracy(result.labels, points.labels()),
            0.98);
  EXPECT_TRUE(result.converged);
}

TEST(MapReduceKMeans, MatchesInProcessKMeansQuality) {
  const data::PointSet points = blobs(240, 4, 712);

  MrKMeansParams mr_params;
  mr_params.k = 4;
  dasc::Rng r1(2);
  const MrKMeansResult mr = mapreduce_kmeans(points, mr_params, r1);

  clustering::KMeansParams local_params;
  local_params.k = 4;
  dasc::Rng r2(2);
  const auto local = clustering::kmeans(points, local_params, r2);

  const double mr_acc =
      clustering::clustering_accuracy(mr.labels, points.labels());
  const double local_acc =
      clustering::clustering_accuracy(local.labels, points.labels());
  EXPECT_NEAR(mr_acc, local_acc, 0.05);
}

TEST(MapReduceKMeans, CentroidsAreClusterMeans) {
  // At convergence every centroid equals the mean of its assigned points
  // (the Lloyd fixed point), regardless of the MapReduce plumbing.
  const data::PointSet points = blobs(120, 2, 713);
  MrKMeansParams params;
  params.k = 2;
  dasc::Rng rng(3);
  const MrKMeansResult result = mapreduce_kmeans(points, params, rng);
  ASSERT_TRUE(result.converged);

  for (std::size_t c = 0; c < 2; ++c) {
    std::vector<double> mean(points.dim(), 0.0);
    std::size_t count = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (result.labels[i] != static_cast<int>(c)) continue;
      const auto p = points.point(i);
      for (std::size_t d = 0; d < points.dim(); ++d) mean[d] += p[d];
      ++count;
    }
    ASSERT_GT(count, 0u);
    for (std::size_t d = 0; d < points.dim(); ++d) {
      EXPECT_NEAR(result.centroids[c][d],
                  mean[d] / static_cast<double>(count), 1e-9);
    }
  }
}

TEST(MapReduceKMeans, CombinerShrinksShuffleTraffic) {
  const data::PointSet points = blobs(400, 3, 714);

  MrKMeansParams with_combiner;
  with_combiner.k = 3;
  with_combiner.max_iterations = 3;
  with_combiner.conf.split_records = 50;
  dasc::Rng r1(4);
  const auto combined = mapreduce_kmeans(points, with_combiner, r1);

  MrKMeansParams without = with_combiner;
  without.conf.enable_combiner = false;
  dasc::Rng r2(4);
  const auto raw = mapreduce_kmeans(points, without, r2);

  EXPECT_LT(combined.shuffle_bytes, raw.shuffle_bytes / 2);
  // Same fixed point either way.
  EXPECT_EQ(combined.labels, raw.labels);
}

TEST(MapReduceKMeans, SingleClusterCentroidIsGlobalMean) {
  const data::PointSet points = blobs(50, 2, 715);
  MrKMeansParams params;
  params.k = 1;
  dasc::Rng rng(5);
  const MrKMeansResult result = mapreduce_kmeans(points, params, rng);
  std::vector<double> mean(points.dim(), 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto p = points.point(i);
    for (std::size_t d = 0; d < points.dim(); ++d) mean[d] += p[d];
  }
  for (std::size_t d = 0; d < points.dim(); ++d) {
    EXPECT_NEAR(result.centroids[0][d],
                mean[d] / static_cast<double>(points.size()), 1e-9);
  }
}

TEST(MapReduceKMeans, AccumulatesSimulatedTime) {
  const data::PointSet points = blobs(100, 2, 716);
  MrKMeansParams params;
  params.k = 2;
  params.max_iterations = 5;
  dasc::Rng rng(6);
  const MrKMeansResult result = mapreduce_kmeans(points, params, rng);
  EXPECT_GT(result.simulated_seconds, 0.0);
  EXPECT_GE(result.iterations, 1u);
  EXPECT_LE(result.iterations, 5u);
}

TEST(MapReduceKMeans, RejectsBadArguments) {
  const data::PointSet points = blobs(10, 2, 717);
  MrKMeansParams params;
  dasc::Rng rng(7);
  params.k = 0;
  EXPECT_THROW(mapreduce_kmeans(points, params, rng), dasc::InvalidArgument);
  params.k = 11;
  EXPECT_THROW(mapreduce_kmeans(points, params, rng), dasc::InvalidArgument);
  params.k = 2;
  params.max_iterations = 0;
  EXPECT_THROW(mapreduce_kmeans(points, params, rng), dasc::InvalidArgument);
  EXPECT_THROW(mapreduce_kmeans(data::PointSet(), params, rng),
               dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::core
