#include "data/wiki_crawler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "data/wiki_corpus.hpp"

namespace dasc::data {
namespace {

TEST(ExtractLinks, ParsesMarkedAnchors) {
  const std::string html =
      "<div class=\"CategoryTreeBullet\"><a href=\"/cat/1\">A</a></div>"
      "<div class=\"CategoryTreeEmptyBullet\"><a href=\"/cat/2\">B</a></div>"
      "<div class=\"CategoryTreeBullet\"><a href=\"/cat/3\">C</a></div>";
  const auto bullets = extract_links(html, "CategoryTreeBullet");
  ASSERT_EQ(bullets.size(), 2u);
  EXPECT_EQ(bullets[0], "/cat/1");
  EXPECT_EQ(bullets[1], "/cat/3");
  const auto leaves = extract_links(html, "CategoryTreeEmptyBullet");
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves[0], "/cat/2");
  EXPECT_TRUE(extract_links(html, "ArticleLink").empty());
}

TEST(WikiSite, LaysOutTreeAndDocuments) {
  Rng rng(961);
  WikiCorpusParams params;
  params.n = 60;
  params.k = 4;
  const WikiSite site = make_wiki_site(params, rng);
  EXPECT_EQ(site.num_documents, 60u);
  EXPECT_EQ(site.num_categories, 4u);
  ASSERT_TRUE(site.pages.contains(site.index_url));
  // At least one page per document plus the category pages.
  EXPECT_GE(site.pages.size(), 60u + 4u);
  // The index page carries the paper's tree markers.
  const std::string& index = site.pages.at(site.index_url);
  EXPECT_TRUE(index.find("CategoryTreeBullet") != std::string::npos ||
              index.find("CategoryTreeEmptyBullet") != std::string::npos);
}

TEST(Crawler, RecoversEveryDocument) {
  Rng rng(962);
  WikiCorpusParams params;
  params.n = 80;
  params.k = 5;
  const WikiSite site = make_wiki_site(params, rng);
  const CrawlResult crawl = crawl_wiki_site(site);

  EXPECT_EQ(crawl.documents.size(), 80u);
  EXPECT_EQ(crawl.categories_discovered, 5u);
  // Every crawled body is a real document page (contains topic terms).
  for (const auto& doc : crawl.documents) {
    EXPECT_NE(doc.html.find("topic"), std::string::npos);
  }
}

TEST(Crawler, LabelsAreConsistentWithSiteStructure) {
  // All documents discovered under one leaf share a crawler label, and
  // distinct leaves get distinct labels (the paper's ground truth).
  Rng rng(963);
  WikiCorpusParams params;
  params.n = 90;
  params.k = 3;
  const WikiSite site = make_wiki_site(params, rng);
  const CrawlResult crawl = crawl_wiki_site(site);

  std::set<int> labels;
  for (const auto& doc : crawl.documents) labels.insert(doc.category);
  EXPECT_EQ(labels.size(), 3u);

  // Balanced corpus: each label covers n/k documents.
  for (int label : labels) {
    std::size_t count = 0;
    for (const auto& doc : crawl.documents) {
      if (doc.category == label) ++count;
    }
    EXPECT_EQ(count, 30u);
  }
}

TEST(Crawler, CrawledCorpusFeedsThePipeline) {
  // End-to-end §5.2: site -> crawl -> text pipeline -> labelled features.
  Rng rng(964);
  WikiCorpusParams params;
  params.n = 60;
  params.k = 3;
  const WikiSite site = make_wiki_site(params, rng);
  const CrawlResult crawl = crawl_wiki_site(site);
  const PointSet features = wiki_documents_to_features(crawl.documents, 11);
  EXPECT_EQ(features.size(), 60u);
  EXPECT_EQ(features.dim(), 11u);
  EXPECT_TRUE(features.has_labels());
}

TEST(Crawler, SingleCategorySite) {
  Rng rng(965);
  WikiCorpusParams params;
  params.n = 10;
  params.k = 1;
  const WikiSite site = make_wiki_site(params, rng);
  const CrawlResult crawl = crawl_wiki_site(site);
  EXPECT_EQ(crawl.documents.size(), 10u);
  EXPECT_EQ(crawl.categories_discovered, 1u);
}

TEST(Crawler, DanglingLinkThrows) {
  Rng rng(966);
  WikiCorpusParams params;
  params.n = 20;
  params.k = 2;
  WikiSite site = make_wiki_site(params, rng);
  // Remove one document page: the crawler must notice.
  site.pages.erase("/doc/0");
  EXPECT_THROW(crawl_wiki_site(site), dasc::IoError);
}

TEST(Crawler, CycleSafe) {
  // A category page linking back to the index must not loop forever.
  Rng rng(967);
  WikiCorpusParams params;
  params.n = 20;
  params.k = 2;
  WikiSite site = make_wiki_site(params, rng);
  site.pages[site.index_url] +=
      "<div class=\"CategoryTreeBullet\"><a href=\"" + site.index_url +
      "\">loop</a></div>";
  const CrawlResult crawl = crawl_wiki_site(site);
  EXPECT_EQ(crawl.documents.size(), 20u);
}

TEST(Crawler, RejectsEmptyOrBrokenSite) {
  EXPECT_THROW(crawl_wiki_site(WikiSite{}), dasc::InvalidArgument);
  WikiSite no_index;
  no_index.pages["/other"] = "<html></html>";
  no_index.index_url = "/cat/0";
  EXPECT_THROW(crawl_wiki_site(no_index), dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::data
