#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"

namespace dasc::data {
namespace {

TEST(GaussianMixture, ShapeAndRange) {
  Rng rng(1);
  MixtureParams params;
  params.n = 500;
  params.dim = 8;
  params.k = 3;
  const PointSet points = make_gaussian_mixture(params, rng);
  EXPECT_EQ(points.size(), 500u);
  EXPECT_EQ(points.dim(), 8u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (double v : points.point(i)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(GaussianMixture, BalancedLabels) {
  Rng rng(2);
  MixtureParams params;
  params.n = 300;
  params.k = 3;
  const PointSet points = make_gaussian_mixture(params, rng);
  ASSERT_TRUE(points.has_labels());
  std::vector<int> counts(3, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ++counts[static_cast<std::size_t>(points.label(i))];
  }
  for (int c : counts) EXPECT_EQ(c, 100);
}

TEST(GaussianMixture, SameClusterPointsAreCloser) {
  Rng rng(3);
  MixtureParams params;
  params.n = 200;
  params.dim = 16;
  params.k = 2;
  params.cluster_stddev = 0.02;
  const PointSet points = make_gaussian_mixture(params, rng);
  // Points 0 and 2 share component 0; point 1 is component 1.
  const double same =
      linalg::squared_distance(points.point(0), points.point(2));
  const double cross =
      linalg::squared_distance(points.point(0), points.point(1));
  EXPECT_LT(same, cross);
}

TEST(GaussianMixture, DeterministicForSeed) {
  MixtureParams params;
  params.n = 50;
  Rng a(9);
  Rng b(9);
  const PointSet pa = make_gaussian_mixture(params, a);
  const PointSet pb = make_gaussian_mixture(params, b);
  EXPECT_EQ(pa.values(), pb.values());
}

TEST(GaussianMixture, RejectsBadParams) {
  Rng rng(1);
  MixtureParams params;
  params.n = 5;
  params.k = 10;  // k > n
  EXPECT_THROW(make_gaussian_mixture(params, rng), dasc::InvalidArgument);
}

TEST(Uniform, CoversUnitBox) {
  Rng rng(4);
  const PointSet points = make_uniform(2000, 2, rng);
  double lo = 1.0;
  double hi = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    lo = std::min(lo, points.at(i, 0));
    hi = std::max(hi, points.at(i, 0));
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(TwoRings, RadiiSeparateByLabel) {
  Rng rng(5);
  const PointSet points = make_two_rings(400, 0.0, rng);
  ASSERT_TRUE(points.has_labels());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double dx = points.at(i, 0) - 0.5;
    const double dy = points.at(i, 1) - 0.5;
    const double radius = std::sqrt(dx * dx + dy * dy);
    if (points.label(i) == 0) {
      EXPECT_NEAR(radius, 0.2, 1e-9);
    } else {
      EXPECT_NEAR(radius, 0.45, 1e-9);
    }
  }
}

TEST(TwoRings, NoiseSpreadsRadius) {
  Rng rng(6);
  const PointSet points = make_two_rings(500, 0.01, rng);
  double spread = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points.label(i) != 0) continue;
    const double dx = points.at(i, 0) - 0.5;
    const double dy = points.at(i, 1) - 0.5;
    spread = std::max(spread, std::abs(std::sqrt(dx * dx + dy * dy) - 0.2));
  }
  EXPECT_GT(spread, 0.005);
  EXPECT_LT(spread, 0.1);
}

}  // namespace
}  // namespace dasc::data
