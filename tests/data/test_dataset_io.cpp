#include "data/dataset_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/synthetic.hpp"

namespace dasc::data {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dasc_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(DatasetIoTest, CsvRoundTripWithLabels) {
  Rng rng(1);
  MixtureParams params;
  params.n = 20;
  params.dim = 3;
  const PointSet original = make_gaussian_mixture(params, rng);
  save_csv(original, path("points.csv"));
  const PointSet loaded = load_csv(path("points.csv"), true);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.dim(), original.dim());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.label(i), original.label(i));
    for (std::size_t d = 0; d < original.dim(); ++d) {
      EXPECT_DOUBLE_EQ(loaded.at(i, d), original.at(i, d));
    }
  }
}

TEST_F(DatasetIoTest, CsvRoundTripWithoutLabels) {
  Rng rng(2);
  const PointSet original = make_uniform(10, 4, rng);
  save_csv(original, path("plain.csv"));
  const PointSet loaded = load_csv(path("plain.csv"), false);
  EXPECT_EQ(loaded.size(), 10u);
  EXPECT_EQ(loaded.dim(), 4u);
  EXPECT_FALSE(loaded.has_labels());
}

TEST_F(DatasetIoTest, BinaryRoundTrip) {
  Rng rng(3);
  MixtureParams params;
  params.n = 33;
  params.dim = 5;
  const PointSet original = make_gaussian_mixture(params, rng);
  save_binary(original, path("points.bin"));
  const PointSet loaded = load_binary(path("points.bin"));
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.values(), original.values());
  EXPECT_EQ(loaded.labels(), original.labels());
}

TEST_F(DatasetIoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_csv(path("nope.csv"), false), dasc::IoError);
  EXPECT_THROW(load_binary(path("nope.bin")), dasc::IoError);
}

TEST_F(DatasetIoTest, MalformedCsvThrows) {
  {
    std::ofstream out(path("bad.csv"));
    out << "1.0,2.0\n1.0,not_a_number\n";
  }
  EXPECT_THROW(load_csv(path("bad.csv"), false), dasc::IoError);
}

TEST_F(DatasetIoTest, InconsistentColumnCountThrows) {
  {
    std::ofstream out(path("ragged.csv"));
    out << "1.0,2.0\n3.0\n";
  }
  EXPECT_THROW(load_csv(path("ragged.csv"), false), dasc::IoError);
}

TEST_F(DatasetIoTest, EmptyCsvThrows) {
  { std::ofstream out(path("empty.csv")); }
  EXPECT_THROW(load_csv(path("empty.csv"), false), dasc::IoError);
}

TEST(RecordSerialization, RoundTripPreservesPrecision) {
  const std::vector<double> point{0.1234567890123456, -7.5, 1e-17};
  const std::string record = point_to_record(point);
  const std::vector<double> back = record_to_point(record);
  ASSERT_EQ(back.size(), point.size());
  for (std::size_t d = 0; d < point.size(); ++d) {
    EXPECT_DOUBLE_EQ(back[d], point[d]);
  }
}

TEST(RecordSerialization, MalformedRecordThrows) {
  EXPECT_THROW(record_to_point("1.0,abc"), dasc::IoError);
}

}  // namespace
}  // namespace dasc::data
