#include "data/point_set.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dasc::data {
namespace {

TEST(PointSet, ConstructionAndAccess) {
  PointSet points(3, 2);
  EXPECT_EQ(points.size(), 3u);
  EXPECT_EQ(points.dim(), 2u);
  points.at(1, 1) = 5.0;
  EXPECT_DOUBLE_EQ(points.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(points.point(1)[1], 5.0);
}

TEST(PointSet, AdoptsValuesVector) {
  const PointSet points(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(points.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(points.at(1, 0), 3.0);
}

TEST(PointSet, RejectsSizeMismatch) {
  EXPECT_THROW(PointSet(2, 2, {1.0, 2.0, 3.0}), dasc::InvalidArgument);
}

TEST(PointSet, IndexBoundsChecked) {
  PointSet points(2, 2);
  EXPECT_THROW(points.at(2, 0), dasc::InvalidArgument);
  EXPECT_THROW(points.at(0, 2), dasc::InvalidArgument);
  EXPECT_THROW(points.point(2), dasc::InvalidArgument);
}

TEST(PointSet, LabelsRoundTrip) {
  PointSet points(3, 1);
  EXPECT_FALSE(points.has_labels());
  EXPECT_THROW(points.label(0), dasc::InvalidArgument);
  points.set_labels({0, 1, 2});
  EXPECT_TRUE(points.has_labels());
  EXPECT_EQ(points.label(2), 2);
  EXPECT_THROW(points.set_labels({0}), dasc::InvalidArgument);
}

TEST(PointSet, SubsetSelectsRowsAndLabels) {
  PointSet points(4, 2, {0, 0, 1, 1, 2, 2, 3, 3});
  points.set_labels({10, 11, 12, 13});
  const PointSet sub = points.subset({3, 1});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sub.at(1, 0), 1.0);
  EXPECT_EQ(sub.label(0), 13);
  EXPECT_EQ(sub.label(1), 11);
  EXPECT_THROW(points.subset({4}), dasc::InvalidArgument);
}

TEST(PointSet, NormalizeMinMaxMapsToUnitBox) {
  PointSet points(3, 2, {0.0, 10.0, 5.0, 20.0, 10.0, 30.0});
  points.normalize_min_max();
  EXPECT_DOUBLE_EQ(points.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(points.at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(points.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(points.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(points.at(2, 1), 1.0);
}

TEST(PointSet, NormalizeConstantDimensionToZero) {
  PointSet points(2, 1, {7.0, 7.0});
  points.normalize_min_max();
  EXPECT_DOUBLE_EQ(points.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(points.at(1, 0), 0.0);
}

TEST(PointSet, SpansAndMinima) {
  const PointSet points(3, 2, {1.0, -2.0, 4.0, 0.0, 2.0, 6.0});
  const auto spans = points.spans();
  const auto minima = points.minima();
  EXPECT_DOUBLE_EQ(spans[0], 3.0);
  EXPECT_DOUBLE_EQ(spans[1], 8.0);
  EXPECT_DOUBLE_EQ(minima[0], 1.0);
  EXPECT_DOUBLE_EQ(minima[1], -2.0);
}

}  // namespace
}  // namespace dasc::data
