#include "data/wiki_corpus.hpp"

#include <gtest/gtest.h>

#include <set>

#include "clustering/metrics.hpp"
#include "common/error.hpp"

namespace dasc::data {
namespace {

TEST(WikiCategoryCount, MatchesPaperFitAtTableSizes) {
  // Table 1 / Eq. 15: K = 17 (log2 N - 9). Exact at powers of two.
  EXPECT_EQ(wiki_category_count(1024), 17u);       // 17 * 1
  EXPECT_EQ(wiki_category_count(2048), 34u);       // 17 * 2
  EXPECT_EQ(wiki_category_count(1 << 20), 187u);   // 17 * 11
  EXPECT_EQ(wiki_category_count(1 << 21), 204u);   // 17 * 12
}

TEST(WikiCategoryCount, ClampedForSmallN) {
  EXPECT_EQ(wiki_category_count(2), 1u);
  EXPECT_EQ(wiki_category_count(512), 1u);  // log2 = 9 -> 0, clamped
}

TEST(WikiCategoryCount, MonotonicInN) {
  std::size_t prev = 0;
  for (std::size_t n = 1024; n <= (1 << 18); n *= 2) {
    const std::size_t k = wiki_category_count(n);
    EXPECT_GE(k, prev);
    prev = k;
  }
}

TEST(CategoryTree, ExactLeafCount) {
  Rng rng(1);
  for (std::size_t leaves : {1u, 2u, 7u, 17u, 50u}) {
    const CategoryTree tree = CategoryTree::generate(leaves, rng);
    EXPECT_EQ(tree.leaf_ids.size(), leaves);
    std::set<int> labels;
    for (std::size_t id : tree.leaf_ids) {
      EXPECT_TRUE(tree.nodes[id].is_leaf);
      labels.insert(tree.nodes[id].leaf_label);
    }
    EXPECT_EQ(labels.size(), leaves);  // dense distinct labels
  }
}

TEST(CategoryTree, RootIsNotALeafForMultiLeafTrees) {
  Rng rng(2);
  const CategoryTree tree = CategoryTree::generate(5, rng);
  EXPECT_FALSE(tree.nodes[0].is_leaf);
  EXPECT_FALSE(tree.nodes[0].children.empty());
}

TEST(WikiDocuments, BalancedCategoriesAndMarkup) {
  Rng rng(3);
  WikiCorpusParams params;
  params.n = 60;
  params.k = 3;
  const auto docs = make_wiki_documents(params, rng);
  ASSERT_EQ(docs.size(), 60u);
  std::vector<int> counts(3, 0);
  for (const auto& doc : docs) {
    ASSERT_GE(doc.category, 0);
    ASSERT_LT(doc.category, 3);
    ++counts[static_cast<std::size_t>(doc.category)];
    EXPECT_NE(doc.html.find("<html>"), std::string::npos);
    EXPECT_NE(doc.html.find("topic"), std::string::npos);
  }
  for (int c : counts) EXPECT_EQ(c, 20);
}

TEST(WikiDocuments, FeaturePipelineSeparatesCategories) {
  Rng rng(4);
  WikiCorpusParams params;
  params.n = 90;
  params.k = 3;
  const auto docs = make_wiki_documents(params, rng);
  const PointSet features = wiki_documents_to_features(docs, 11);
  ASSERT_EQ(features.size(), 90u);
  ASSERT_EQ(features.dim(), 11u);
  ASSERT_TRUE(features.has_labels());

  // Nearest-centroid self-consistency: same-category docs should be more
  // similar on tf-idf features than cross-category ones.
  double same = 0.0;
  double cross = 0.0;
  int same_n = 0;
  int cross_n = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = i + 1; j < 30; ++j) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < 11; ++d) {
        const double diff = features.at(i, d) - features.at(j, d);
        d2 += diff * diff;
      }
      if (features.label(i) == features.label(j)) {
        same += d2;
        ++same_n;
      } else {
        cross += d2;
        ++cross_n;
      }
    }
  }
  EXPECT_LT(same / same_n, cross / cross_n);
}

TEST(WikiVectors, ShapeRangeAndAutoCategories) {
  Rng rng(5);
  WikiCorpusParams params;
  params.n = 1024;
  const PointSet points = make_wiki_vectors(params, rng);
  EXPECT_EQ(points.size(), 1024u);
  EXPECT_EQ(points.dim(), 11u);
  ASSERT_TRUE(points.has_labels());
  int max_label = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    max_label = std::max(max_label, points.label(i));
    for (double v : points.point(i)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
  EXPECT_EQ(max_label + 1, 17);  // wiki_category_count(1024)
}

TEST(WikiVectors, SubtopicsSpreadCategoriesIntoModes) {
  // With subtopics, one category occupies several nearby modes; points of
  // the same category but different subtopics sit farther apart than
  // points of the same subtopic, yet the category labels are unchanged.
  dasc::Rng rng(7);
  WikiCorpusParams params;
  params.n = 400;
  params.k = 4;
  params.subtopics = 5;
  params.noise = 0.02;
  params.subtopic_spread = 0.15;
  const PointSet points = make_wiki_vectors(params, rng);
  ASSERT_TRUE(points.has_labels());

  // Points i and i+k*s share (category, subtopic); i and i+k share the
  // category only.
  const std::size_t k = params.k;
  const std::size_t s = params.subtopics;
  double same_subtopic = 0.0;
  double same_category = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i + k * s < 200; ++i) {
    double d_sub = 0.0;
    double d_cat = 0.0;
    for (std::size_t dim = 0; dim < points.dim(); ++dim) {
      const double a = points.at(i, dim);
      d_sub += (a - points.at(i + k * s, dim)) * (a - points.at(i + k * s, dim));
      d_cat += (a - points.at(i + k, dim)) * (a - points.at(i + k, dim));
    }
    same_subtopic += d_sub;
    same_category += d_cat;
    ++pairs;
  }
  EXPECT_LT(same_subtopic / pairs, same_category / pairs);
}

TEST(WikiVectors, SubtopicsPreserveLabelBalance) {
  dasc::Rng rng(8);
  WikiCorpusParams params;
  params.n = 120;
  params.k = 3;
  params.subtopics = 4;
  const PointSet points = make_wiki_vectors(params, rng);
  std::vector<int> counts(3, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ++counts[static_cast<std::size_t>(points.label(i))];
  }
  for (int c : counts) EXPECT_EQ(c, 40);
}

TEST(WikiVectors, RejectsMoreCategoriesThanDocs) {
  Rng rng(6);
  WikiCorpusParams params;
  params.n = 4;
  params.k = 10;
  EXPECT_THROW(make_wiki_vectors(params, rng), dasc::InvalidArgument);
}

}  // namespace
}  // namespace dasc::data
