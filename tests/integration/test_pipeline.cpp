// Cross-module integration tests: the full paper pipeline from raw
// pseudo-HTML documents through text processing, LSH bucketing, MapReduce
// execution, and clustering metrics.
#include <gtest/gtest.h>

#include "baselines/nystrom.hpp"
#include "baselines/psc.hpp"
#include "clustering/metrics.hpp"
#include "clustering/spectral.hpp"
#include "core/dasc_clusterer.hpp"
#include "core/dasc_mapreduce.hpp"
#include "data/wiki_corpus.hpp"

namespace dasc {
namespace {

TEST(Pipeline, DocumentsToClustersEndToEnd) {
  // Raw documents -> text pipeline -> tf-idf features -> DASC clusters.
  Rng rng(611);
  data::WikiCorpusParams corpus_params;
  corpus_params.n = 120;
  corpus_params.k = 4;
  const auto docs = data::make_wiki_documents(corpus_params, rng);
  const data::PointSet features = data::wiki_documents_to_features(docs, 11);

  core::DascParams params;
  params.k = 4;
  Rng cluster_rng(612);
  const core::DascResult result =
      core::dasc_cluster(features, params, cluster_rng);
  const double accuracy =
      clustering::clustering_accuracy(result.labels, features.labels());
  EXPECT_GT(accuracy, 0.7);  // real text pipeline: noisier than vectors
}

TEST(Pipeline, AllFourAlgorithmsClusterTheSameWikiDataset) {
  // The Fig. 3 comparison harness in miniature: every algorithm must beat
  // a trivial baseline on the same labelled corpus.
  Rng rng(613);
  data::WikiCorpusParams corpus_params;
  corpus_params.n = 512;
  corpus_params.k = 8;  // explicit: the Eq. 15 fit degenerates below 1K docs
  const data::PointSet points = data::make_wiki_vectors(corpus_params, rng);
  const std::size_t k = corpus_params.k;

  core::DascParams dasc_params;
  dasc_params.k = k;
  Rng r1(1);
  const double dasc_acc = clustering::clustering_accuracy(
      core::dasc_cluster(points, dasc_params, r1).labels, points.labels());

  clustering::SpectralParams sc_params;
  sc_params.k = k;
  Rng r2(2);
  const double sc_acc = clustering::clustering_accuracy(
      clustering::spectral_cluster(points, sc_params, r2).labels,
      points.labels());

  baselines::PscParams psc_params;
  psc_params.k = k;
  Rng r3(3);
  const double psc_acc = clustering::clustering_accuracy(
      baselines::psc_cluster(points, psc_params, r3).labels,
      points.labels());

  baselines::NystromParams nyst_params;
  nyst_params.k = k;
  Rng r4(4);
  const double nyst_acc = clustering::clustering_accuracy(
      baselines::nystrom_cluster(points, nyst_params, r4).labels,
      points.labels());

  // Random assignment over k clusters would land near 1/k plus the largest
  // cluster share; require clearly better.
  const double floor = 2.5 / static_cast<double>(k);
  EXPECT_GT(dasc_acc, floor);
  EXPECT_GT(sc_acc, floor);
  EXPECT_GT(psc_acc, floor);
  EXPECT_GT(nyst_acc, floor);
}

TEST(Pipeline, MapReduceAndInProcessDascAgreeOnBuckets) {
  Rng rng(614);
  data::WikiCorpusParams corpus_params;
  corpus_params.n = 200;
  const data::PointSet points = data::make_wiki_vectors(corpus_params, rng);

  core::MapReduceDascParams mr_params;
  Rng mr_rng(77);
  const auto mr = core::dasc_cluster_mapreduce(points, mr_params, mr_rng);

  Rng local_rng(77);
  core::ApproximatorStats local_stats;
  core::bucket_points(points, mr_params.dasc, local_rng, &local_stats);

  EXPECT_EQ(mr.stats.raw_buckets, local_stats.raw_buckets);
  EXPECT_EQ(mr.stats.merged_buckets, local_stats.merged_buckets);
  EXPECT_EQ(mr.stats.gram_bytes, local_stats.gram_bytes);
}

TEST(Pipeline, ApproximationMemoryAdvantageGrowsWithN) {
  // Fig. 6b's shape: DASC's Gram bytes grow much slower than N^2.
  Rng rng(615);
  double prev_ratio = 1.0;
  for (std::size_t n : {256u, 1024u, 4096u}) {
    data::WikiCorpusParams corpus_params;
    corpus_params.n = n;
    const data::PointSet points =
        data::make_wiki_vectors(corpus_params, rng);
    core::DascParams params;
    Rng bucket_rng(616);
    core::ApproximatorStats stats;
    core::bucket_points(points, params, bucket_rng, &stats);
    std::size_t entries = 0;
    Rng again(616);
    for (const auto& bucket : core::bucket_points(points, params, again)) {
      entries += bucket.indices.size() * bucket.indices.size();
    }
    const double ratio = static_cast<double>(entries) /
                         (static_cast<double>(n) * static_cast<double>(n));
    EXPECT_LE(ratio, prev_ratio * 1.2);  // non-increasing (with slack)
    prev_ratio = ratio;
  }
}

}  // namespace
}  // namespace dasc
