// Parameterized property sweeps across the pipeline's configuration grid:
// every (hash family x signature width x merge setting) combination must
// uphold the same invariants — partition completeness, label validity,
// memory accounting, determinism.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "clustering/metrics.hpp"
#include "core/dasc_clusterer.hpp"
#include "data/synthetic.hpp"

namespace dasc {
namespace {

using GridParam = std::tuple<int /*family*/, int /*m*/, bool /*merge*/>;

class DascGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  static core::DascParams make_params(const GridParam& grid) {
    core::DascParams params;
    params.family = static_cast<core::HashFamily>(std::get<0>(grid));
    params.m = static_cast<std::size_t>(std::get<1>(grid));
    params.p = std::get<2>(grid) ? 0 : params.m;  // 0 = auto merge (M-1)
    params.k = 4;
    return params;
  }

  static const data::PointSet& dataset() {
    static const data::PointSet points = [] {
      Rng rng(901);
      data::MixtureParams mix;
      mix.n = 240;
      mix.dim = 10;
      mix.k = 4;
      mix.cluster_stddev = 0.05;
      return data::make_gaussian_mixture(mix, rng);
    }();
    return points;
  }
};

TEST_P(DascGrid, BucketsPartitionTheDataset) {
  const core::DascParams params = make_params(GetParam());
  Rng rng(902);
  const auto buckets = core::bucket_points(dataset(), params, rng);
  std::set<std::size_t> seen;
  for (const auto& bucket : buckets) {
    for (std::size_t idx : bucket.indices) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate point " << idx;
    }
  }
  EXPECT_EQ(seen.size(), dataset().size());
}

TEST_P(DascGrid, StatsAccountingConsistent) {
  const core::DascParams params = make_params(GetParam());
  Rng rng(903);
  core::ApproximatorStats stats;
  const auto buckets = core::bucket_points(dataset(), params, rng, &stats);
  EXPECT_EQ(stats.merged_buckets, buckets.size());
  EXPECT_GE(stats.raw_buckets, stats.merged_buckets);
  std::size_t entries = 0;
  std::size_t largest = 0;
  for (const auto& bucket : buckets) {
    entries += bucket.indices.size() * bucket.indices.size();
    largest = std::max(largest, bucket.indices.size());
  }
  EXPECT_EQ(stats.gram_bytes, linalg::gram_entry_bytes(entries));
  EXPECT_EQ(stats.largest_bucket, largest);
  EXPECT_GT(stats.fill_ratio, 0.0);
  EXPECT_LE(stats.fill_ratio, 1.0 + 1e-12);
}

TEST_P(DascGrid, ClusteringProducesValidDeterministicLabels) {
  const core::DascParams params = make_params(GetParam());
  Rng r1(904);
  const core::DascResult a = core::dasc_cluster(dataset(), params, r1);
  Rng r2(904);
  const core::DascResult b = core::dasc_cluster(dataset(), params, r2);

  ASSERT_EQ(a.labels.size(), dataset().size());
  for (int label : a.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(a.num_clusters));
  }
  EXPECT_EQ(a.labels, b.labels);  // determinism across runs
}

TEST_P(DascGrid, PurityBeatsChance) {
  const core::DascParams params = make_params(GetParam());
  Rng rng(905);
  const core::DascResult result = core::dasc_cluster(dataset(), params, rng);
  const double purity =
      clustering::clustering_purity(result.labels, dataset().labels());
  EXPECT_GT(purity, 0.4);  // 4 balanced classes: chance is 0.25
}

std::string grid_name(const ::testing::TestParamInfo<GridParam>& info) {
  static const char* const families[] = {"RandomProjection", "MinHash",
                                         "SimHash", "SpectralHash"};
  return std::string(families[std::get<0>(info.param)]) + "_m" +
         std::to_string(std::get<1>(info.param)) +
         (std::get<2>(info.param) ? "_merge" : "_nomerge");
}

INSTANTIATE_TEST_SUITE_P(
    FamilyWidthMerge, DascGrid,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),   // all hash families
                       ::testing::Values(4, 8, 12),     // signature widths
                       ::testing::Bool()),              // merge on/off
    grid_name);

class BalanceCapGrid : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BalanceCapGrid, CapIsRespectedAndPartitionPreserved) {
  Rng data_rng(906);
  data::MixtureParams mix;
  mix.n = 300;
  mix.dim = 6;
  mix.k = 2;
  mix.cluster_stddev = 0.02;
  const data::PointSet points = data::make_gaussian_mixture(mix, data_rng);

  core::DascParams params;
  params.m = 4;
  params.max_bucket_points = GetParam();
  Rng rng(907);
  core::ApproximatorStats stats;
  const auto buckets = core::bucket_points(points, params, rng, &stats);

  std::size_t covered = 0;
  for (const auto& bucket : buckets) {
    EXPECT_LE(bucket.indices.size(), GetParam());
    covered += bucket.indices.size();
  }
  EXPECT_EQ(covered, 300u);
}

INSTANTIATE_TEST_SUITE_P(Caps, BalanceCapGrid,
                         ::testing::Values(8, 32, 64, 150, 300));

}  // namespace
}  // namespace dasc
