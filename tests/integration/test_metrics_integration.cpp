// End-to-end metrics coverage: a full dasc_cluster run must report every
// pipeline stage into the registry handed down through DascParams, obey
// the AdmissionGate byte budget in its gauges, and produce identical
// counters at any thread count (the CI regression-gate contract).
#include <gtest/gtest.h>

#include <cstddef>

#include "common/metrics.hpp"
#include "core/dasc_clusterer.hpp"
#include "core/dasc_mapreduce.hpp"
#include "data/synthetic.hpp"

namespace dasc {
namespace {

data::PointSet metrics_points(std::size_t n) {
  Rng rng(77);
  data::MixtureParams mix;
  mix.n = n;
  mix.dim = 16;
  mix.k = 4;
  mix.cluster_stddev = 0.05;
  return data::make_gaussian_mixture(mix, rng);
}

core::DascParams metrics_params(MetricsRegistry* registry,
                                std::size_t threads) {
  core::DascParams params;
  params.k = 24;
  // Cap the bucket size so every Gram block (<= 192^2 doubles = 288 KB)
  // fits the byte budget below — then peak_inflight_bytes <= budget holds
  // (an oversized single block would be admitted alone by design and
  // legitimately exceed it).
  params.max_bucket_points = 192;
  params.max_inflight_bytes = 1 << 20;
  params.threads = threads;
  params.metrics = registry;
  return params;
}

TEST(MetricsIntegration, EveryStageReports) {
  MetricsRegistry registry;
  Rng rng(1);
  const core::DascResult result = core::dasc_cluster(
      metrics_points(900), metrics_params(&registry, 4), rng);
  EXPECT_EQ(result.labels.size(), 900u);

  // Stage timers: signatures, bucketing, gram build, eigensolve, K-means.
  EXPECT_GT(registry.timer_count("lsh.signatures"), 0);
  EXPECT_GT(registry.timer_count("lsh.bucketing"), 0);
  EXPECT_GT(registry.timer_count("pipeline.gram_build"), 0);
  EXPECT_GT(registry.timer_total_ms("pipeline.gram_build"), 0.0);
  EXPECT_GT(registry.timer_count("spectral.eigensolve"), 0);
  EXPECT_GT(registry.timer_count("kmeans.lloyd"), 0);
  EXPECT_EQ(registry.timer_count("pipeline.wall"), 1);

  // Work counters.
  EXPECT_EQ(registry.counter_value("lsh.points_hashed"), 900);
  EXPECT_GT(registry.counter_value("lsh.raw_buckets"), 0);
  EXPECT_GT(registry.counter_value("pipeline.buckets"), 0);
  EXPECT_EQ(registry.counter_value("pipeline.blocks_admitted"),
            registry.counter_value("pipeline.buckets"));
  EXPECT_GT(registry.counter_value("kmeans.runs"), 0);
  EXPECT_GE(registry.counter_value("kmeans.iterations"),
            registry.counter_value("kmeans.runs"));

  // AdmissionGate gauges: the high-water mark respects the byte budget
  // because the bucket cap bounds every single block below it.
  const std::int64_t peak =
      registry.gauge_value("pipeline.peak_inflight_bytes");
  EXPECT_GT(peak, 0);
  EXPECT_LE(peak, 1 << 20);
  EXPECT_GE(peak, registry.gauge_value("pipeline.peak_block_bytes"));
  EXPECT_GE(registry.gauge_value("pipeline.peak_inflight_blocks"), 1);
}

TEST(MetricsIntegration, CountersIdenticalAcrossThreadCounts) {
  MetricsRegistry serial;
  MetricsRegistry threaded;
  {
    Rng rng(5);
    core::dasc_cluster(metrics_points(900), metrics_params(&serial, 1), rng);
  }
  {
    Rng rng(5);
    core::dasc_cluster(metrics_points(900), metrics_params(&threaded, 8),
                       rng);
  }
  // The regression-gate contract: counters are work counts, deterministic
  // for a fixed seed regardless of scheduling. (Timers and gauges vary.)
  EXPECT_EQ(serial.counters_snapshot(), threaded.counters_snapshot());
}

TEST(MetricsIntegration, MapReduceJobReports) {
  MetricsRegistry registry;
  core::MapReduceDascParams params;
  params.dasc.k = 8;
  params.dasc.m = 8;
  params.dasc.metrics = &registry;
  params.conf.num_reducers = 4;
  params.conf.split_records = 64;
  Rng rng(3);
  const auto result =
      core::dasc_cluster_mapreduce(metrics_points(400), params, rng);
  EXPECT_EQ(result.labels.size(), 400u);

  // Two jobs ran (signature stage + cluster stage).
  EXPECT_EQ(registry.counter_value("mapreduce.jobs"), 2);
  EXPECT_GT(registry.timer_count("mapreduce.map"), 0);
  EXPECT_GT(registry.timer_count("mapreduce.shuffle"), 0);
  EXPECT_GT(registry.timer_count("mapreduce.reduce"), 0);
  // Stage 1 maps every point once; stage 2 maps every grouped member.
  EXPECT_EQ(registry.counter_value("mapreduce.map_input_records"), 800);
  EXPECT_GT(registry.counter_value("mapreduce.reduce_input_records"), 0);
  EXPECT_GT(registry.counter_value("mapreduce.shuffle_bytes"), 0);
  EXPECT_EQ(registry.counter_value("mapreduce.failed_task_attempts"), 0);
  // The reducers ran the shared bucket pipeline + spectral stages.
  EXPECT_GT(registry.counter_value("pipeline.buckets"), 0);
  EXPECT_GT(registry.timer_count("pipeline.gram_build"), 0);
}

TEST(MetricsIntegration, NullRegistryRunsClean) {
  Rng rng(9);
  core::DascParams params = metrics_params(nullptr, 2);
  const core::DascResult result =
      core::dasc_cluster(metrics_points(300), params, rng);
  EXPECT_EQ(result.labels.size(), 300u);
}

}  // namespace
}  // namespace dasc
