// Failure-injection tests: degenerate datasets, hostile inputs, and
// component failures that the pipeline must survive or reject cleanly.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/nystrom.hpp"
#include "baselines/psc.hpp"
#include "clustering/metrics.hpp"
#include "common/error.hpp"
#include "core/dasc_clusterer.hpp"
#include "data/synthetic.hpp"
#include "mapreduce/job.hpp"

namespace dasc {
namespace {

TEST(FailureInjection, AllPointsIdentical) {
  // Every signature collides: one giant bucket; spectral must not crash on
  // the rank-1 all-ones Gram matrix.
  const data::PointSet points(64, 4, std::vector<double>(256, 0.5));
  core::DascParams params;
  params.k = 3;
  Rng rng(711);
  const core::DascResult result = core::dasc_cluster(points, params, rng);
  EXPECT_EQ(result.labels.size(), 64u);
}

TEST(FailureInjection, SinglePointDataset) {
  const data::PointSet points(1, 3, {0.1, 0.2, 0.3});
  core::DascParams params;
  params.k = 1;
  Rng rng(712);
  const core::DascResult result = core::dasc_cluster(points, params, rng);
  ASSERT_EQ(result.labels.size(), 1u);
  EXPECT_EQ(result.labels[0], 0);
}

TEST(FailureInjection, TwoPointDataset) {
  const data::PointSet points(2, 2, {0.0, 0.0, 1.0, 1.0});
  core::DascParams params;
  params.k = 2;
  Rng rng(713);
  const core::DascResult result = core::dasc_cluster(points, params, rng);
  EXPECT_EQ(result.labels.size(), 2u);
}

TEST(FailureInjection, ExtremeOutlierDoesNotBreakBucketing) {
  Rng data_rng(714);
  data::MixtureParams mix;
  mix.n = 100;
  mix.dim = 4;
  mix.k = 2;
  mix.clip_to_unit = false;
  data::PointSet points = data::make_gaussian_mixture(mix, data_rng);
  for (std::size_t d = 0; d < 4; ++d) points.at(0, d) = 1e6;  // outlier

  core::DascParams params;
  params.k = 2;
  Rng rng(715);
  const core::DascResult result = core::dasc_cluster(points, params, rng);
  EXPECT_EQ(result.labels.size(), 100u);
}

TEST(FailureInjection, ConstantDimensionsHandledByAllAlgorithms) {
  // Half the dimensions carry no information (span 0).
  Rng data_rng(716);
  data::PointSet points(80, 6);
  for (std::size_t i = 0; i < 80; ++i) {
    points.at(i, 0) = data_rng.uniform();
    points.at(i, 1) = data_rng.uniform();
    points.at(i, 2) = data_rng.uniform();
    // dims 3-5 stay 0.
  }
  core::DascParams params;
  params.k = 2;
  Rng r1(717);
  EXPECT_NO_THROW(core::dasc_cluster(points, params, r1));

  baselines::PscParams psc_params;
  psc_params.k = 2;
  Rng r2(718);
  EXPECT_NO_THROW(baselines::psc_cluster(points, psc_params, r2));

  baselines::NystromParams nyst_params;
  nyst_params.k = 2;
  Rng r3(719);
  EXPECT_NO_THROW(baselines::nystrom_cluster(points, nyst_params, r3));
}

TEST(FailureInjection, KLargerThanAnyBucket) {
  Rng data_rng(720);
  const data::PointSet points = data::make_uniform(60, 4, data_rng);
  core::DascParams params;
  params.k = 50;  // most buckets will be far smaller than K
  params.m = 6;
  Rng rng(721);
  const core::DascResult result = core::dasc_cluster(points, params, rng);
  EXPECT_EQ(result.labels.size(), 60u);
  for (int label : result.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(result.num_clusters));
  }
}

TEST(FailureInjection, MapTaskFailurePropagatesNotHangs) {
  // A mapper that fails on one specific record must fail the whole job
  // (our runtime has no task retry) without deadlocking the thread pool.
  class FlakyMapper final : public mapreduce::Mapper {
   public:
    void map(const std::string& key, const std::string& value,
             mapreduce::Emitter& out) override {
      if (key == "13") throw std::runtime_error("injected task failure");
      out.emit(value, "1");
    }
  };
  class CountReducer final : public mapreduce::Reducer {
   public:
    void reduce(const std::string& key,
                const std::vector<std::string>& values,
                mapreduce::Emitter& out) override {
      out.emit(key, std::to_string(values.size()));
    }
  };

  mapreduce::JobSpec spec;
  spec.conf.split_records = 4;
  spec.mapper_factory = [] { return std::make_unique<FlakyMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };

  std::vector<mapreduce::Record> input;
  for (int i = 0; i < 64; ++i) {
    input.push_back({std::to_string(i), "v" + std::to_string(i % 5)});
  }
  EXPECT_THROW(mapreduce::run_job(spec, input), std::runtime_error);
}

TEST(FailureInjection, NanInputRejectedByMetrics) {
  // Metrics on garbage labels: sizes must still be validated first.
  EXPECT_THROW(
      clustering::clustering_accuracy(std::vector<int>{0},
                                      std::vector<int>{0, 1}),
      InvalidArgument);
}

TEST(FailureInjection, HeavilySkewedBuckets) {
  // 90% of points in one tight clump, the rest scattered: one huge bucket
  // plus many singletons. The per-bucket K allocation must stay valid.
  Rng data_rng(722);
  data::PointSet points(200, 4);
  for (std::size_t i = 0; i < 180; ++i) {
    for (std::size_t d = 0; d < 4; ++d) {
      points.at(i, d) = 0.5 + 0.001 * data_rng.uniform();
    }
  }
  for (std::size_t i = 180; i < 200; ++i) {
    for (std::size_t d = 0; d < 4; ++d) {
      points.at(i, d) = data_rng.uniform();
    }
  }
  core::DascParams params;
  params.k = 4;
  Rng rng(723);
  const core::DascResult result = core::dasc_cluster(points, params, rng);
  EXPECT_EQ(result.labels.size(), 200u);
}

}  // namespace
}  // namespace dasc
