// Regression tests for Server shutdown with queued requests (the serving
// half of the fault-injection PR): shutdown must either drain the queue or
// reject it with a typed error — it must never strand a future or
// deadlock, even while a worker is stalled mid-batch — and a fault during
// fit_model must surface as a typed failure (or be retried away).
#include "serving/server.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <future>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/dasc_params.hpp"
#include "data/synthetic.hpp"
#include "serving/model_artifact.hpp"

namespace dasc::serving {
namespace {

data::PointSet demo_points() {
  data::MixtureParams mix;
  mix.n = 300;
  mix.dim = 8;
  mix.k = 4;
  mix.cluster_stddev = 0.03;
  Rng rng(11);
  return data::make_gaussian_mixture(mix, rng);
}

FitResult demo_fit(const data::PointSet& points) {
  core::DascParams params;
  params.k = 4;
  params.threads = 1;
  Rng rng(7);
  return fit_model(points, params, rng);
}

std::vector<double> query(const data::PointSet& points, std::size_t i) {
  const auto point = points.point(i);
  return std::vector<double>(point.begin(), point.end());
}

TEST(ServerShutdown, RejectSettlesQueuedFuturesWithTypedError) {
  const data::PointSet points = demo_points();
  const FitResult fit = demo_fit(points);
  const Assigner assigner(fit.model);

  // One worker, one-request batches, and a 300ms stall on the first
  // assignment: requests pile up behind the stalled batch, exactly the
  // state that used to strand futures at shutdown.
  FaultInjector injector(FaultPlan::parse(
      "serving.assign:nth=1:max=1:kind=stall:stall_ms=300"));
  MetricsRegistry registry;
  ServerOptions options;
  options.threads = 1;
  options.max_batch_size = 1;
  options.metrics = &registry;
  options.faults = &injector;
  Server server(assigner, options);

  constexpr std::size_t kRequests = 10;
  std::vector<std::future<int>> futures;
  futures.reserve(kRequests);
  futures.push_back(server.submit(query(points, 0)));
  // Wait until the worker has dequeued request 0 and entered the stall, so
  // shutdown provably races an in-flight batch, not an idle server.
  while (injector.calls("serving.assign") == 0) std::this_thread::yield();
  for (std::size_t i = 1; i < kRequests; ++i) {
    futures.push_back(server.submit(query(points, i)));
  }
  server.shutdown(Server::DrainMode::kReject);

  // Every future settles: in-flight requests with their label, queued ones
  // with ServerStoppedError. Nothing hangs, nothing is stranded.
  std::size_t served = 0;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    try {
      EXPECT_EQ(futures[i].get(), fit.offline.labels[i]);
      ++served;
    } catch (const ServerStoppedError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(served + rejected, kRequests);
  // The stalled batch was in flight, so at least it was served; the stall
  // outlives the submissions, so at least one later request was rejected.
  EXPECT_GE(served, 1u);
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(registry.gauge_value("serving.rejected_on_shutdown"),
            static_cast<std::int64_t>(rejected));
}

TEST(ServerShutdown, DrainServesEverythingQueued) {
  const data::PointSet points = demo_points();
  const FitResult fit = demo_fit(points);
  const Assigner assigner(fit.model);

  FaultInjector injector(FaultPlan::parse(
      "serving.assign:nth=1:max=1:kind=stall:stall_ms=100"));
  ServerOptions options;
  options.threads = 1;
  options.max_batch_size = 1;
  options.faults = &injector;
  Server server(assigner, options);

  constexpr std::size_t kRequests = 10;
  std::vector<std::future<int>> futures;
  futures.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(server.submit(query(points, i)));
  }
  server.shutdown(Server::DrainMode::kDrain);

  for (std::size_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(futures[i].get(), fit.offline.labels[i]) << "request " << i;
  }
}

TEST(ServerShutdown, IdempotentAndSafeUnderConcurrentCallers) {
  const data::PointSet points = demo_points();
  const FitResult fit = demo_fit(points);
  const Assigner assigner(fit.model);

  ServerOptions options;
  options.threads = 2;
  Server server(assigner, options);
  auto future = server.submit(query(points, 0));

  std::vector<std::thread> callers;
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&server] {
      server.shutdown(Server::DrainMode::kReject);
    });
  }
  for (auto& caller : callers) caller.join();
  server.shutdown();  // and again, after the fact

  // The one submitted request settled one way or the other.
  try {
    EXPECT_EQ(future.get(), fit.offline.labels[0]);
  } catch (const ServerStoppedError&) {
  }
  EXPECT_THROW(server.submit(query(points, 1)), InvalidArgument);
}

TEST(ServerShutdown, AssignFaultRejectsOnlyThatRequest) {
  const data::PointSet points = demo_points();
  const FitResult fit = demo_fit(points);
  const Assigner assigner(fit.model);

  // One worker + one-request batches make service order the submission
  // order, so the nth=3 fault lands deterministically on request index 2.
  FaultInjector injector(
      FaultPlan::parse("serving.assign:nth=3:max=1"));
  ServerOptions options;
  options.threads = 1;
  options.max_batch_size = 1;
  options.faults = &injector;
  Server server(assigner, options);

  std::vector<std::future<int>> futures;
  for (std::size_t i = 0; i < 5; ++i) {
    futures.push_back(server.submit(query(points, i)));
  }
  server.shutdown(Server::DrainMode::kDrain);

  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (i == 2) {
      EXPECT_THROW(futures[i].get(), FaultInjectedError);
    } else {
      EXPECT_EQ(futures[i].get(), fit.offline.labels[i]) << "request " << i;
    }
  }
}

TEST(ServerShutdown, FaultDuringFitModelFailsFastWithTypedError) {
  const data::PointSet points = demo_points();
  core::DascParams params;
  params.k = 4;
  params.threads = 1;

  FaultInjector injector(FaultPlan::parse("alloc.gram_block:nth=1"));
  params.faults = &injector;  // max_bucket_attempts defaults to 1: fail fast
  Rng rng(7);
  EXPECT_THROW(fit_model(points, params, rng), FaultInjectedError);
}

TEST(ServerShutdown, RetriedFitModelServesFaultFreeLabels) {
  const data::PointSet points = demo_points();
  const FitResult clean = demo_fit(points);

  core::DascParams params;
  params.k = 4;
  params.threads = 1;
  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("alloc.gram_block:nth=1:max=2"));
  params.faults = &injector;
  params.max_bucket_attempts = 4;
  params.metrics = &registry;
  Rng rng(7);
  const FitResult faulted = fit_model(points, params, rng);

  EXPECT_EQ(faulted.offline.labels, clean.offline.labels);
  EXPECT_EQ(registry.counter_value("retry.bucket_attempts"), 2);

  // The model fitted under faults serves the same labels as the clean one.
  const Assigner assigner(faulted.model);
  Server server(assigner);
  EXPECT_EQ(server.assign_all(points), clean.offline.labels);
}

}  // namespace
}  // namespace dasc::serving
