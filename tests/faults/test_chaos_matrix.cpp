// Chaos test matrix (the headline invariant of the fault-injection layer):
// for every fault site x trigger x consumer combination, a run that
// survives its injected faults produces labels BIT-IDENTICAL to the
// fault-free run with the same seed, and the retry counters account for
// every injected fault exactly.
//
// Probability-triggered cases run with threads=1 so the per-site call
// sequence — and therefore which attempts fail — is fully deterministic;
// nth-triggered cases are index-pure and deterministic at any thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/metrics.hpp"
#include "core/dasc_clusterer.hpp"
#include "core/dasc_mapreduce.hpp"
#include "core/dasc_streaming.hpp"
#include "data/dataset_io.hpp"
#include "data/synthetic.hpp"
#include "mapreduce/dfs.hpp"
#include "mapreduce/job_conf.hpp"
#include "serving/model_artifact.hpp"

namespace dasc {
namespace {

enum class Consumer {
  kBatch,         ///< core::dasc_cluster
  kStreaming,     ///< core::dasc_cluster_streaming
  kServingFit,    ///< serving::fit_model (offline labels)
  kMapReduce,     ///< core::dasc_cluster_mapreduce
  kMapReduceDfs,  ///< DFS-backed MapReduce driver (exercises dfs.read)
};

struct ChaosCase {
  const char* name;     ///< gtest parameter name ([A-Za-z0-9_] only)
  Consumer consumer;
  const char* site;     ///< fault site the plan targets
  const char* counter;  ///< retry counter that must account for the faults
  const char* plan;     ///< fault-plan text
  /// Gram backend the run is forced to (default kAuto = historical dense
  /// path at this dataset size). Factored backends re-randomize landmark /
  /// grid draws on every retry from the recreated bucket Rng, which is
  /// exactly what the bit-identical invariant stresses.
  core::GramBackendPolicy backend = core::GramBackendPolicy::kAuto;
  /// Out-of-core spill budget applied to BOTH the clean and the faulted
  /// run, so spill cases test fault-parity of the spilled execution itself
  /// (1 forces every dense Gram block and shuffle spool page to disk).
  std::size_t spill_budget = 0;
  /// Execution mode of the faulted run only — the clean baseline always
  /// runs in-process, so multi-process cases assert cross-mode label
  /// parity and fault recovery in one comparison.
  mapreduce::ExecutionMode execution_mode =
      mapreduce::ExecutionMode::kInProcess;
  /// Worker-process count for multi-process cases (0 = JobConf default).
  std::size_t num_workers = 0;
  /// Shuffle topology of the faulted multi-process run. Worker-to-worker
  /// cases route partitions over the data plane (reducers pull from mapper
  /// workers, spooling under the spill budget) while the clean baseline
  /// stays in-process, so one comparison gates fault recovery, cross-mode
  /// parity, AND cross-topology parity at once.
  mapreduce::ShuffleMode shuffle_mode = mapreduce::ShuffleMode::kRelay;
};

const ChaosCase kCases[] = {
    // alloc.gram_block (bucket pipeline) across every pipeline consumer.
    {"BatchGramNth", Consumer::kBatch, "alloc.gram_block",
     "retry.bucket_attempts", "seed=3;alloc.gram_block:nth=2:max=3"},
    {"BatchGramProb", Consumer::kBatch, "alloc.gram_block",
     "retry.bucket_attempts", "seed=3;alloc.gram_block:prob=0.3"},
    {"StreamingGramNth", Consumer::kStreaming, "alloc.gram_block",
     "retry.bucket_attempts", "seed=4;alloc.gram_block:nth=3:max=2"},
    {"ServingFitGramNth", Consumer::kServingFit, "alloc.gram_block",
     "retry.bucket_attempts", "seed=5;alloc.gram_block:nth=2:max=2"},
    {"MapReduceGramNth", Consumer::kMapReduce, "alloc.gram_block",
     "retry.bucket_attempts", "seed=6;alloc.gram_block:nth=2:max=2"},
    // The virtual cluster's own sites, through the MapReduce driver.
    {"MapTaskNth", Consumer::kMapReduce, "map.task", "retry.map_attempts",
     "seed=7;map.task:nth=2:max=3"},
    {"MapTaskProb", Consumer::kMapReduce, "map.task", "retry.map_attempts",
     "seed=7;map.task:prob=0.25"},
    {"ReduceTaskNth", Consumer::kMapReduce, "reduce.task",
     "retry.reduce_attempts", "seed=8;reduce.task:nth=1:max=3"},
    {"ShuffleFetchNth", Consumer::kMapReduce, "shuffle.fetch",
     "retry.shuffle_fetch", "seed=9;shuffle.fetch:nth=2:max=4"},
    {"ShuffleCorruptNth", Consumer::kMapReduce, "shuffle.fetch",
     "retry.shuffle_fetch", "seed=9;shuffle.fetch:nth=3:max=3:kind=corrupt"},
    {"DfsReadCorruptNth", Consumer::kMapReduceDfs, "dfs.read",
     "retry.dfs_read", "seed=10;dfs.read:nth=4:max=4:kind=corrupt"},
    {"DfsReadErrorProb", Consumer::kMapReduceDfs, "dfs.read",
     "retry.dfs_read", "seed=10;dfs.read:prob=0.2"},
    // Multi-site storm: every MapReduce-path site at once.
    {"MapReduceStorm", Consumer::kMapReduce, "", "",
     "seed=11;map.task:nth=3:max=2;reduce.task:nth=2:max=2;"
     "shuffle.fetch:nth=2:max=2:kind=corrupt;alloc.gram_block:nth=5:max=2"},
    // Factored backends under the same gram-block faults: the landmark /
    // binning draws restart from the recreated per-bucket Rng on retry, so
    // survived runs must still be bit-identical to the fault-free run.
    {"BatchGramNthNystromBackend", Consumer::kBatch, "alloc.gram_block",
     "retry.bucket_attempts", "seed=3;alloc.gram_block:nth=2:max=3",
     core::GramBackendPolicy::kNystrom},
    {"BatchGramProbNystromBackend", Consumer::kBatch, "alloc.gram_block",
     "retry.bucket_attempts", "seed=3;alloc.gram_block:prob=0.3",
     core::GramBackendPolicy::kNystrom},
    {"StreamingGramNthNystromBackend", Consumer::kStreaming,
     "alloc.gram_block", "retry.bucket_attempts",
     "seed=4;alloc.gram_block:nth=3:max=2",
     core::GramBackendPolicy::kNystrom},
    {"ServingFitGramNthNystromBackend", Consumer::kServingFit,
     "alloc.gram_block", "retry.bucket_attempts",
     "seed=5;alloc.gram_block:nth=2:max=2",
     core::GramBackendPolicy::kNystrom},
    {"MapReduceGramNthNystromBackend", Consumer::kMapReduce,
     "alloc.gram_block", "retry.bucket_attempts",
     "seed=6;alloc.gram_block:nth=2:max=2",
     core::GramBackendPolicy::kNystrom},
    {"BatchGramNthBinningBackend", Consumer::kBatch, "alloc.gram_block",
     "retry.bucket_attempts", "seed=3;alloc.gram_block:nth=2:max=3",
     core::GramBackendPolicy::kRbfBinning},
    // spill.page_io (out-of-core page reads/writes) with a 1-byte budget:
    // every dense Gram block — and, on the MapReduce path, every shuffle
    // spool page — goes through disk, and the injected I/O failures (error
    // kind) and CRC-caught corruptions (corrupt kind) must leave the labels
    // bit-identical to the same spilled run without faults.
    {"BatchSpillPageIoErrorNth", Consumer::kBatch, "spill.page_io",
     "retry.spill_page_io", "seed=12;spill.page_io:nth=2:max=4",
     core::GramBackendPolicy::kAuto, 1},
    {"BatchSpillPageIoCorruptNth", Consumer::kBatch, "spill.page_io",
     "retry.spill_page_io", "seed=12;spill.page_io:nth=3:max=5:kind=corrupt",
     core::GramBackendPolicy::kAuto, 1},
    {"StreamingSpillPageIoErrorNth", Consumer::kStreaming, "spill.page_io",
     "retry.spill_page_io", "seed=13;spill.page_io:nth=2:max=3",
     core::GramBackendPolicy::kAuto, 1},
    {"MapReduceSpillPageIoCorruptNth", Consumer::kMapReduce, "spill.page_io",
     "retry.spill_page_io", "seed=14;spill.page_io:nth=3:max=6:kind=corrupt",
     core::GramBackendPolicy::kAuto, 1},
    // Spill + shuffle faults at once: page corruption while the shuffle
    // fetch layer is also corrupting records.
    {"MapReduceSpillStorm", Consumer::kMapReduce, "", "",
     "seed=15;spill.page_io:nth=4:max=3;"
     "shuffle.fetch:nth=2:max=2:kind=corrupt",
     core::GramBackendPolicy::kAuto, 1},
    // Multi-process execution: the faulted run uses real worker processes
    // while the clean baseline stays in-process, so every case below also
    // asserts cross-mode label parity. Task/shuffle faults fire
    // supervisor-side, so their exact retry accounting carries over.
    {"MultiprocMapTaskNth", Consumer::kMapReduce, "map.task",
     "retry.map_attempts", "seed=16;map.task:nth=2:max=3",
     core::GramBackendPolicy::kAuto, 0,
     mapreduce::ExecutionMode::kMultiProcess, 2},
    {"MultiprocReduceTaskNth", Consumer::kMapReduce, "reduce.task",
     "retry.reduce_attempts", "seed=17;reduce.task:nth=2:max=2",
     core::GramBackendPolicy::kAuto, 0,
     mapreduce::ExecutionMode::kMultiProcess, 2},
    {"MultiprocShuffleCorruptNth", Consumer::kMapReduce, "shuffle.fetch",
     "retry.shuffle_fetch", "seed=18;shuffle.fetch:nth=3:max=3:kind=corrupt",
     core::GramBackendPolicy::kAuto, 0,
     mapreduce::ExecutionMode::kMultiProcess, 2},
    // worker.kill: SIGKILL the assigned worker right after a task ships.
    // Retry accounting is not exact-per-fire (recovery may re-execute map
    // tasks whose outputs died with their owner), so site/counter are
    // blank and only survival + parity + total_fired are asserted. The
    // pipeline's first stage has 4 map dispatches then 3 reduce
    // dispatches, so nth<=4 kills mid-map and nth in [5,7] mid-reduce.
    {"MultiprocKillMidMapW1", Consumer::kMapReduce, "", "",
     "seed=19;worker.kill:nth=2:max=1", core::GramBackendPolicy::kAuto, 0,
     mapreduce::ExecutionMode::kMultiProcess, 1},
    {"MultiprocKillMidMapW2", Consumer::kMapReduce, "", "",
     "seed=19;worker.kill:nth=3:max=1", core::GramBackendPolicy::kAuto, 0,
     mapreduce::ExecutionMode::kMultiProcess, 2},
    {"MultiprocKillMidReduceW4", Consumer::kMapReduce, "", "",
     "seed=19;worker.kill:nth=6:max=1", core::GramBackendPolicy::kAuto, 0,
     mapreduce::ExecutionMode::kMultiProcess, 4},
    // Worker death while tasks are also failing and shuffle transfers are
    // being corrupted: the full multi-process recovery stack at once.
    {"MultiprocStorm", Consumer::kMapReduce, "", "",
     "seed=20;map.task:nth=3:max=2;"
     "shuffle.fetch:nth=2:max=2:kind=corrupt;worker.kill:nth=5:max=1",
     core::GramBackendPolicy::kAuto, 0,
     mapreduce::ExecutionMode::kMultiProcess, 2},
    // Worker-to-worker shuffle: reducers pull partitions straight from
    // mapper workers, so shuffle.fetch fires inside the pulling worker
    // (fires/retries travel back in kReducePullDone) and worker.kill can
    // strand map outputs whose owner died — forcing the kPullFailed ->
    // inline re-execution -> kPullResume recovery. Crossed with spill
    // budgets so the pulled spool itself runs resident (64Ki), fully
    // spilled (1), and unbudgeted (0).
    {"W2WShuffleErrorNthW2", Consumer::kMapReduce, "shuffle.fetch",
     "retry.shuffle_fetch", "seed=21;shuffle.fetch:nth=2:max=2",
     core::GramBackendPolicy::kAuto, 0,
     mapreduce::ExecutionMode::kMultiProcess, 2,
     mapreduce::ShuffleMode::kWorkerToWorker},
    {"W2WShuffleCorruptNthW2Spill1", Consumer::kMapReduce, "shuffle.fetch",
     "retry.shuffle_fetch",
     "seed=22;shuffle.fetch:nth=3:max=2:kind=corrupt",
     core::GramBackendPolicy::kAuto, 1,
     mapreduce::ExecutionMode::kMultiProcess, 2,
     mapreduce::ShuffleMode::kWorkerToWorker},
    {"W2WShuffleCorruptNthW4Spill64K", Consumer::kMapReduce,
     "shuffle.fetch", "retry.shuffle_fetch",
     "seed=23;shuffle.fetch:nth=2:max=1:kind=corrupt",
     core::GramBackendPolicy::kAuto, 64 * 1024,
     mapreduce::ExecutionMode::kMultiProcess, 4,
     mapreduce::ShuffleMode::kWorkerToWorker},
    {"W2WSpillPageIoCorruptNth", Consumer::kMapReduce, "spill.page_io",
     "retry.spill_page_io",
     "seed=24;spill.page_io:nth=3:max=4:kind=corrupt",
     core::GramBackendPolicy::kAuto, 1,
     mapreduce::ExecutionMode::kMultiProcess, 2,
     mapreduce::ShuffleMode::kWorkerToWorker},
    {"W2WKillMidMapW2", Consumer::kMapReduce, "", "",
     "seed=25;worker.kill:nth=2:max=1", core::GramBackendPolicy::kAuto, 0,
     mapreduce::ExecutionMode::kMultiProcess, 2,
     mapreduce::ShuffleMode::kWorkerToWorker},
    {"W2WKillMidReduceW4Spill1", Consumer::kMapReduce, "", "",
     "seed=25;worker.kill:nth=6:max=1", core::GramBackendPolicy::kAuto, 1,
     mapreduce::ExecutionMode::kMultiProcess, 4,
     mapreduce::ShuffleMode::kWorkerToWorker},
    // Kill + corruption at once through the pull path: a reducer dies,
    // its re-dispatched pull both re-executes orphaned map tasks and
    // retries CRC-caught corrupt transfers, and the labels still match.
    {"W2WStorm", Consumer::kMapReduce, "", "",
     "seed=26;worker.kill:nth=5:max=1;"
     "shuffle.fetch:nth=2:max=2:kind=corrupt",
     core::GramBackendPolicy::kAuto, 1,
     mapreduce::ExecutionMode::kMultiProcess, 2,
     mapreduce::ShuffleMode::kWorkerToWorker},
};

data::PointSet chaos_points() {
  dasc::Rng rng(310);
  data::MixtureParams params;
  params.n = 240;
  params.dim = 8;
  params.k = 4;
  params.cluster_stddev = 0.03;
  return data::make_gaussian_mixture(params, rng);
}

core::DascParams chaos_params(FaultInjector* faults, MetricsRegistry* metrics,
                              core::GramBackendPolicy backend,
                              std::size_t spill_budget) {
  core::DascParams params;
  params.k = 4;
  params.m = 6;
  params.threads = 1;  // deterministic call order for probability triggers
  params.max_bucket_attempts = 10;  // headroom: every bucket must succeed
  params.faults = faults;
  params.metrics = metrics;
  params.gram_backend = backend;
  params.spill_budget_bytes = spill_budget;
  return params;
}

/// Run one consumer end-to-end and return its labels.
std::vector<int> run_consumer(Consumer consumer, const data::PointSet& points,
                              FaultInjector* faults, MetricsRegistry* metrics,
                              core::GramBackendPolicy backend,
                              std::size_t spill_budget,
                              mapreduce::ExecutionMode execution_mode =
                                  mapreduce::ExecutionMode::kInProcess,
                              std::size_t num_workers = 0,
                              mapreduce::ShuffleMode shuffle_mode =
                                  mapreduce::ShuffleMode::kRelay) {
  const core::DascParams params =
      chaos_params(faults, metrics, backend, spill_budget);
  Rng rng(77);
  switch (consumer) {
    case Consumer::kBatch:
      return core::dasc_cluster(points, params, rng).labels;
    case Consumer::kStreaming:
      return core::dasc_cluster_streaming(points, params, rng).labels;
    case Consumer::kServingFit:
      return serving::fit_model(points, params, rng).offline.labels;
    case Consumer::kMapReduce:
    case Consumer::kMapReduceDfs: {
      core::MapReduceDascParams mr;
      mr.dasc = params;
      mr.conf.num_reducers = 3;
      mr.conf.split_records = 60;  // several map tasks -> several fetches
      mr.conf.physical_threads = 1;
      mr.conf.max_task_attempts = 10;
      mr.conf.max_fetch_attempts = 10;
      mr.conf.execution_mode = execution_mode;
      mr.conf.shuffle_mode = shuffle_mode;
      if (num_workers > 0) mr.conf.num_workers = num_workers;
      if (consumer == Consumer::kMapReduce) {
        return core::dasc_cluster_mapreduce(points, mr, rng).labels;
      }
      mapreduce::DfsConfig dfs_config;
      dfs_config.block_size_bytes = 2048;  // several blocks -> several reads
      dfs_config.read_attempts = 10;
      dfs_config.faults = faults;
      dfs_config.metrics = metrics;
      mapreduce::Dfs dfs(dfs_config);
      std::vector<std::string> lines;
      lines.reserve(points.size());
      for (std::size_t i = 0; i < points.size(); ++i) {
        lines.push_back(data::point_to_record(points.point(i)));
      }
      dfs.write_file("/chaos/points", lines);
      return core::dasc_cluster_mapreduce_dfs(dfs, "/chaos/points",
                                              "/chaos/out", mr, rng)
          .labels;
    }
  }
  return {};
}

class ChaosMatrix : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosMatrix, LabelsSurviveFaultsBitIdentically) {
  const ChaosCase& test_case = GetParam();
  const data::PointSet points = chaos_points();

  // The baseline is always in-process: for kMultiProcess cases the single
  // EXPECT_EQ below therefore covers both fault recovery and cross-mode
  // label parity.
  const std::vector<int> clean =
      run_consumer(test_case.consumer, points, nullptr, nullptr,
                   test_case.backend, test_case.spill_budget);
  ASSERT_FALSE(clean.empty());

  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse(test_case.plan), &registry);
  const std::vector<int> faulted =
      run_consumer(test_case.consumer, points, &injector, &registry,
                   test_case.backend, test_case.spill_budget,
                   test_case.execution_mode, test_case.num_workers,
                   test_case.shuffle_mode);

  // The invariant: the run survived, so the labels are exactly the
  // fault-free labels.
  EXPECT_EQ(faulted, clean);

  // The case must have actually injected something...
  EXPECT_GT(injector.total_fired(), 0u) << "plan never fired: "
                                        << test_case.plan;
  EXPECT_GT(registry.counter_value("fault.injected"), 0);

  // ...and the retry machinery must account for every fault: each injected
  // fault failed exactly one attempt, and (since the run succeeded) each
  // failed attempt was retried exactly once.
  if (test_case.site[0] != '\0') {
    const auto fired =
        static_cast<std::int64_t>(injector.fired(test_case.site));
    EXPECT_EQ(registry.counter_value(
                  std::string("fault.injected.") + test_case.site),
              fired);
    EXPECT_EQ(registry.counter_value(test_case.counter), fired);
  }

  // Determinism of the injection itself: replaying the identical plan
  // against the identical consumer fires the identical fault count and
  // yields the identical labels again.
  MetricsRegistry replay_registry;
  FaultInjector replay(FaultPlan::parse(test_case.plan), &replay_registry);
  const std::vector<int> replayed =
      run_consumer(test_case.consumer, points, &replay, &replay_registry,
                   test_case.backend, test_case.spill_budget,
                   test_case.execution_mode, test_case.num_workers,
                   test_case.shuffle_mode);
  EXPECT_EQ(replayed, clean);
  EXPECT_EQ(replay.total_fired(), injector.total_fired());
}

INSTANTIATE_TEST_SUITE_P(AllSitesAndConsumers, ChaosMatrix,
                         ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<ChaosCase>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace dasc
