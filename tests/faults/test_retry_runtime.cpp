// Recovery-path tests of the runtime under injected faults: task retry with
// backoff, speculative re-execution, checksum-verified DFS reads and shuffle
// transfers, and per-bucket retry / graceful degradation in the pipeline.
// The common shape: inject a bounded number of faults, assert the run
// SUCCEEDS with output identical to the fault-free run, and assert the
// retry counters match the plan exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/metrics.hpp"
#include "core/bucket_pipeline.hpp"
#include "data/synthetic.hpp"
#include "mapreduce/dfs.hpp"
#include "mapreduce/job.hpp"
#include "mapreduce/shuffle.hpp"

namespace dasc {
namespace {

using mapreduce::Emitter;
using mapreduce::JobResult;
using mapreduce::JobSpec;
using mapreduce::Mapper;
using mapreduce::Record;
using mapreduce::Reducer;
using mapreduce::run_job;

class WordCountMapper final : public Mapper {
 public:
  void map(const std::string& /*key*/, const std::string& value,
           Emitter& out) override {
    std::istringstream stream(value);
    std::string word;
    while (stream >> word) out.emit(word, "1");
  }
};

class SumReducer final : public Reducer {
 public:
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) override {
    long total = 0;
    for (const auto& v : values) total += std::stol(v);
    out.emit(key, std::to_string(total));
  }
};

JobSpec word_count_spec() {
  JobSpec spec;
  spec.conf.num_reducers = 3;
  spec.conf.split_records = 2;
  spec.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  return spec;
}

std::vector<Record> word_count_input() {
  return {
      {"0", "the quick brown fox"}, {"1", "the lazy dog"},
      {"2", "the quick dog"},       {"3", "fox fox fox"},
      {"4", "dog"},                 {"5", "lazy lazy fox"},
  };
}

TEST(JobRetry, MapFaultsAreRetriedAndOutputIsIdentical) {
  const JobResult clean = run_job(word_count_spec(), word_count_input());

  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("map.task:nth=1:max=2"));
  JobSpec spec = word_count_spec();
  spec.conf.max_task_attempts = 4;
  spec.faults = &injector;
  spec.metrics = &registry;
  const JobResult faulted = run_job(spec, word_count_input());

  EXPECT_EQ(faulted.output, clean.output);
  EXPECT_EQ(faulted.counters.failed_task_attempts, 2u);
  EXPECT_EQ(registry.counter_value("retry.map_attempts"), 2);
  EXPECT_EQ(registry.counter_value("retry.reduce_attempts"), 0);
  EXPECT_EQ(injector.fired("map.task"), 2u);
}

TEST(JobRetry, ReduceFaultsAreRetriedAndOutputIsIdentical) {
  const JobResult clean = run_job(word_count_spec(), word_count_input());

  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("reduce.task:nth=1:max=2"));
  JobSpec spec = word_count_spec();
  spec.conf.max_task_attempts = 4;
  spec.faults = &injector;
  spec.metrics = &registry;
  const JobResult faulted = run_job(spec, word_count_input());

  EXPECT_EQ(faulted.output, clean.output);
  EXPECT_EQ(faulted.counters.failed_task_attempts, 2u);
  EXPECT_EQ(registry.counter_value("retry.reduce_attempts"), 2);
}

TEST(JobRetry, ExhaustedAttemptsFailTheJob) {
  FaultInjector injector(FaultPlan::parse("map.task:nth=1"));  // every call
  JobSpec spec = word_count_spec();
  spec.conf.max_task_attempts = 3;
  spec.faults = &injector;
  EXPECT_THROW(run_job(spec, word_count_input()), FaultInjectedError);
}

TEST(JobRetry, DefaultConfFailsFast) {
  // max_task_attempts defaults to 1: the first injected fault is fatal and
  // no retries are attempted — preserving the legacy failure semantics.
  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("map.task:nth=1:max=1"));
  JobSpec spec = word_count_spec();
  spec.faults = &injector;
  spec.metrics = &registry;
  EXPECT_THROW(run_job(spec, word_count_input()), FaultInjectedError);
  EXPECT_EQ(registry.counter_value("retry.map_attempts"), 0);
}

TEST(JobRetry, BackoffTimerRecordsOneSamplePerRetry) {
  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("map.task:nth=1:max=3"));
  JobSpec spec = word_count_spec();
  spec.conf.max_task_attempts = 5;
  spec.conf.retry_backoff_base_ms = 0.0;  // count retries without sleeping
  spec.faults = &injector;
  spec.metrics = &registry;
  run_job(spec, word_count_input());
  EXPECT_EQ(registry.timer_count("retry.backoff"), 3u);
}

TEST(JobRetry, ShuffleCorruptionIsDetectedAndRefetched) {
  const JobResult clean = run_job(word_count_spec(), word_count_input());

  MetricsRegistry registry;
  FaultInjector injector(
      FaultPlan::parse("shuffle.fetch:nth=1:max=2:kind=corrupt"));
  JobSpec spec = word_count_spec();
  spec.faults = &injector;
  spec.metrics = &registry;
  const JobResult faulted = run_job(spec, word_count_input());

  EXPECT_EQ(faulted.output, clean.output);
  EXPECT_EQ(registry.counter_value("retry.shuffle_fetch"), 2);
}

TEST(JobRetry, ShuffleFetchExhaustionThrowsIoError) {
  FaultInjector injector(FaultPlan::parse("shuffle.fetch:nth=1"));
  JobSpec spec = word_count_spec();
  spec.conf.max_fetch_attempts = 2;
  spec.faults = &injector;
  EXPECT_THROW(run_job(spec, word_count_input()), IoError);
}

TEST(JobRetry, SpeculationRescuesAStalledStraggler) {
  // The first map-task attempt stalls for 300ms; every other task commits
  // in well under the speculative threshold, so the monitor launches a
  // backup for the straggler, the backup commits, and the job finishes with
  // correct output long before the stall would.
  std::vector<Record> input;
  for (int i = 0; i < 16; ++i) {
    input.push_back({std::to_string(i), "alpha beta gamma"});
  }
  JobSpec spec = word_count_spec();
  spec.conf.split_records = 2;  // 8 map tasks
  spec.conf.physical_threads = 4;
  spec.conf.enable_speculation = true;
  spec.conf.speculative_min_ms = 5.0;

  const JobResult clean = run_job(spec, input);

  MetricsRegistry registry;
  FaultInjector injector(
      FaultPlan::parse("map.task:nth=1:max=1:kind=stall:stall_ms=300"));
  spec.faults = &injector;
  spec.metrics = &registry;
  const JobResult faulted = run_job(spec, input);

  EXPECT_EQ(faulted.output, clean.output);
  EXPECT_EQ(injector.fired("map.task"), 1u);
  EXPECT_GE(registry.gauge_value("retry.speculative_launches"), 1);
  // The backup is a duplicate of a healthy task, not a failure.
  EXPECT_EQ(faulted.counters.failed_task_attempts, 0u);
}

TEST(DfsRetry, CorruptedReadIsCaughtByChecksumAndRetried) {
  mapreduce::DfsConfig clean_config;
  mapreduce::Dfs clean_dfs(clean_config);
  const std::vector<std::string> lines = {"alpha", "beta", "gamma", "delta"};
  clean_dfs.write_file("/data/in.txt", lines);
  ASSERT_EQ(clean_dfs.read_file("/data/in.txt"), lines);

  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("dfs.read:nth=1:max=2:kind=corrupt"));
  mapreduce::DfsConfig config;
  config.faults = &injector;
  config.metrics = &registry;
  mapreduce::Dfs dfs(config);
  dfs.write_file("/data/in.txt", lines);

  EXPECT_EQ(dfs.read_file("/data/in.txt"), lines);
  EXPECT_EQ(registry.counter_value("retry.dfs_read"), 2);
  EXPECT_EQ(injector.fired("dfs.read"), 2u);
}

TEST(DfsRetry, ErrorFaultsAreRetriedLikeReplicaFailover) {
  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("dfs.read:nth=2"));
  mapreduce::DfsConfig config;
  config.read_attempts = 3;
  config.faults = &injector;
  config.metrics = &registry;
  mapreduce::Dfs dfs(config);
  const std::vector<std::string> lines = {"one", "two", "three"};
  dfs.write_file("/data/in.txt", lines);
  // Attempt 1 succeeds, so a single read never even retries; a second read
  // hits the nth=2 fault on its first attempt and falls back.
  EXPECT_EQ(dfs.read_file("/data/in.txt"), lines);
  EXPECT_EQ(dfs.read_file("/data/in.txt"), lines);
  EXPECT_EQ(registry.counter_value("retry.dfs_read"), 1);
}

TEST(DfsRetry, ExhaustedReadAttemptsThrowIoError) {
  FaultInjector injector(FaultPlan::parse("dfs.read:nth=1"));
  mapreduce::DfsConfig config;
  config.read_attempts = 2;
  config.faults = &injector;
  mapreduce::Dfs dfs(config);
  dfs.write_file("/data/in.txt", {"payload"});
  EXPECT_THROW(dfs.read_file("/data/in.txt"), IoError);
}

TEST(ShuffleRetry, FetchAndPartitionMatchesPartitionOutputs) {
  std::vector<std::vector<Record>> outputs = {
      {{"a", "1"}, {"b", "2"}, {"c", "3"}},
      {{"b", "4"}, {"d", "5"}},
      {{"a", "6"}},
  };
  const auto clean = mapreduce::partition_outputs(outputs, 3);

  MetricsRegistry registry;
  FaultInjector injector(
      FaultPlan::parse("shuffle.fetch:nth=1:max=2:kind=corrupt"));
  const auto fetched = mapreduce::fetch_and_partition(
      outputs, 3, &injector, /*max_attempts=*/4, &registry);

  EXPECT_EQ(fetched, clean);
  EXPECT_EQ(registry.counter_value("retry.shuffle_fetch"), 2);

  // Null injector must take the zero-cost path and agree too.
  EXPECT_EQ(mapreduce::fetch_and_partition(outputs, 3, nullptr, 4, nullptr),
            clean);
}

data::PointSet pipeline_points(std::size_t n) {
  dasc::Rng rng(601);
  data::MixtureParams params;
  params.n = n;
  params.dim = 8;
  params.k = 3;
  params.cluster_stddev = 0.03;
  return data::make_gaussian_mixture(params, rng);
}

std::vector<lsh::Bucket> toy_buckets(const std::vector<std::size_t>& sizes) {
  std::vector<lsh::Bucket> buckets(sizes.size());
  std::size_t next = 0;
  for (std::size_t b = 0; b < sizes.size(); ++b) {
    for (std::size_t i = 0; i < sizes[b]; ++i) {
      buckets[b].indices.push_back(next++);
    }
  }
  return buckets;
}

TEST(BucketPipelineRetry, FaultedBucketsAreReattempted) {
  const data::PointSet points = pipeline_points(30);
  const auto buckets = toy_buckets({10, 10, 10});
  const auto jobs = core::plan_bucket_jobs(buckets, 3, 30);

  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("alloc.gram_block:nth=1:max=2"));
  core::BucketPipelineOptions options;
  options.sigma = 0.5;
  options.threads = 2;
  options.faults = &injector;
  options.max_bucket_attempts = 3;
  options.metrics = &registry;

  std::vector<int> commits(buckets.size(), 0);
  std::mutex mutex;
  const auto stats = core::run_bucket_pipeline(
      points, buckets, jobs, options,
      [&](linalg::DenseMatrix&&, const lsh::Bucket&,
          const core::BucketJob& job) {
        std::lock_guard lock(mutex);
        ++commits[job.index];
      });

  // Every bucket's consumer ran exactly once despite the two faults.
  EXPECT_TRUE(std::all_of(commits.begin(), commits.end(),
                          [](int c) { return c == 1; }));
  EXPECT_TRUE(stats.failed_buckets.empty());
  EXPECT_EQ(registry.counter_value("retry.bucket_attempts"), 2);
}

TEST(BucketPipelineRetry, ExhaustedBucketFailsTheRunByDefault) {
  const data::PointSet points = pipeline_points(20);
  const auto buckets = toy_buckets({10, 10});
  const auto jobs = core::plan_bucket_jobs(buckets, 2, 20);

  FaultInjector injector(FaultPlan::parse("alloc.gram_block:nth=1"));
  core::BucketPipelineOptions options;
  options.sigma = 0.5;
  options.threads = 1;
  options.faults = &injector;
  options.max_bucket_attempts = 2;
  EXPECT_THROW(core::run_bucket_pipeline(
                   points, buckets, jobs, options,
                   [](linalg::DenseMatrix&&, const lsh::Bucket&,
                      const core::BucketJob&) {}),
               FaultInjectedError);
}

TEST(BucketPipelineRetry, GracefulDegradationReportsFailedBuckets) {
  const data::PointSet points = pipeline_points(30);
  const auto buckets = toy_buckets({10, 10, 10});
  const auto jobs = core::plan_bucket_jobs(buckets, 3, 30);

  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("alloc.gram_block:nth=1"));
  core::BucketPipelineOptions options;
  options.sigma = 0.5;
  options.threads = 2;
  options.faults = &injector;
  options.max_bucket_attempts = 2;
  options.degrade_on_failure = true;
  options.metrics = &registry;

  std::vector<int> commits(buckets.size(), 0);
  std::mutex mutex;
  const auto stats = core::run_bucket_pipeline(
      points, buckets, jobs, options,
      [&](linalg::DenseMatrix&&, const lsh::Bucket&,
          const core::BucketJob& job) {
        std::lock_guard lock(mutex);
        ++commits[job.index];
      });

  // Every bucket exhausted its attempts; each is reported, none committed.
  EXPECT_EQ(stats.failed_buckets, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(std::all_of(commits.begin(), commits.end(),
                          [](int c) { return c == 0; }));
  EXPECT_EQ(registry.counter_value("fault.buckets_failed"), 3);
}

}  // namespace
}  // namespace dasc
