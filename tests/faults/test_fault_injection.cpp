// Unit tests of the deterministic fault-injection layer: plan grammar,
// trigger semantics (nth-call vs probability), caps, fault kinds, metrics
// emission, and thread-safety of the per-site counters.
#include "common/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace dasc {
namespace {

TEST(FaultPlan, ParsesFullGrammar) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=7;map.task:nth=3:max=2;dfs.read:prob=0.25:kind=corrupt;"
      "shuffle.fetch:nth=1:kind=stall:stall_ms=5");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.faults.size(), 3u);

  EXPECT_EQ(plan.faults[0].site, "map.task");
  EXPECT_EQ(plan.faults[0].every_nth, 3u);
  EXPECT_EQ(plan.faults[0].max_faults, 2u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kError);

  EXPECT_EQ(plan.faults[1].site, "dfs.read");
  EXPECT_DOUBLE_EQ(plan.faults[1].probability, 0.25);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::kCorruption);

  EXPECT_EQ(plan.faults[2].site, "shuffle.fetch");
  EXPECT_EQ(plan.faults[2].kind, FaultKind::kStall);
  EXPECT_EQ(plan.faults[2].stall_ms, 5u);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const std::string text =
      "seed=42;map.task:nth=3:max=2;alloc.gram_block:kind=stall:stall_ms=2";
  const FaultPlan plan =
      FaultPlan::parse("seed=42;map.task:nth=3:max=2;"
                       "alloc.gram_block:nth=1:kind=stall:stall_ms=2");
  const FaultPlan reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed.seed, plan.seed);
  ASSERT_EQ(reparsed.faults.size(), plan.faults.size());
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    EXPECT_EQ(reparsed.faults[i].site, plan.faults[i].site);
    EXPECT_EQ(reparsed.faults[i].every_nth, plan.faults[i].every_nth);
    EXPECT_DOUBLE_EQ(reparsed.faults[i].probability,
                     plan.faults[i].probability);
    EXPECT_EQ(reparsed.faults[i].max_faults, plan.faults[i].max_faults);
    EXPECT_EQ(reparsed.faults[i].kind, plan.faults[i].kind);
    EXPECT_EQ(reparsed.faults[i].stall_ms, plan.faults[i].stall_ms);
  }
  EXPECT_EQ(FaultPlan::parse(plan.to_string()).to_string(), plan.to_string());
  (void)text;
}

TEST(FaultPlan, RejectsMalformedEntries) {
  EXPECT_THROW(FaultPlan::parse("map.task"), InvalidArgument);  // no trigger
  EXPECT_THROW(FaultPlan::parse("map.task:nth=2:prob=0.5"),
               InvalidArgument);  // both triggers
  EXPECT_THROW(FaultPlan::parse("map.task:prob=1.5"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("map.task:nth=abc"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("map.task:kind=banana"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("map.task:frequency=2"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse(":nth=2"), InvalidArgument);  // empty site
}

TEST(FaultPlan, EmptyTextYieldsEmptyPlan) {
  const FaultPlan plan = FaultPlan::parse("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.seed, 0u);
}

TEST(FaultInjector, NthTriggerFiresOnExactCalls) {
  FaultInjector injector(FaultPlan::parse("x:nth=3"));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(injector.check("x") == FaultInjector::Outcome::kError);
  }
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(injector.calls("x"), 9u);
  EXPECT_EQ(injector.fired("x"), 3u);
}

TEST(FaultInjector, MaxFaultsCapsNthTrigger) {
  FaultInjector injector(FaultPlan::parse("x:nth=2:max=2"));
  std::size_t fires = 0;
  for (int i = 0; i < 20; ++i) {
    if (injector.check("x") != FaultInjector::Outcome::kNone) ++fires;
  }
  EXPECT_EQ(fires, 2u);
  EXPECT_EQ(injector.total_fired(), 2u);
}

TEST(FaultInjector, UnknownSitesAreFree) {
  FaultInjector injector(FaultPlan::parse("x:nth=1"));
  EXPECT_EQ(injector.check("y"), FaultInjector::Outcome::kNone);
  EXPECT_EQ(injector.calls("y"), 0u);
  EXPECT_EQ(injector.fired("y"), 0u);
  EXPECT_NO_THROW(injector.maybe_throw("y"));
}

TEST(FaultInjector, ProbabilityIsPureFunctionOfSeedAndIndex) {
  const FaultPlan plan = FaultPlan::parse("seed=5;x:prob=0.5");
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.check("x"), b.check("x")) << "call " << i;
  }
  EXPECT_EQ(a.fired("x"), b.fired("x"));
  EXPECT_GT(a.fired("x"), 0u);
  EXPECT_LT(a.fired("x"), 256u);

  // A different seed produces a different firing pattern (w.h.p. for 256
  // Bernoulli(0.5) draws; this is deterministic given the fixed seeds).
  FaultInjector c(FaultPlan::parse("seed=6;x:prob=0.5"));
  std::size_t diffs = 0;
  FaultInjector a2(plan);
  for (int i = 0; i < 256; ++i) {
    if (a2.check("x") != c.check("x")) ++diffs;
  }
  EXPECT_GT(diffs, 0u);
}

TEST(FaultInjector, ProbabilityEmpiricalRateIsSane) {
  FaultInjector injector(FaultPlan::parse("seed=9;x:prob=0.3"));
  const std::size_t calls = 4000;
  for (std::size_t i = 0; i < calls; ++i) injector.check("x");
  const double rate =
      static_cast<double>(injector.fired("x")) / static_cast<double>(calls);
  EXPECT_GT(rate, 0.25);
  EXPECT_LT(rate, 0.35);
}

TEST(FaultInjector, ProbabilityCapBoundsTotalFires) {
  FaultInjector injector(FaultPlan::parse("seed=9;x:prob=0.5:max=3"));
  for (int i = 0; i < 200; ++i) injector.check("x");
  EXPECT_EQ(injector.fired("x"), 3u);
}

TEST(FaultInjector, StallSleepsButDoesNotFail) {
  FaultInjector injector(
      FaultPlan::parse("x:nth=1:max=1:kind=stall:stall_ms=1"));
  EXPECT_EQ(injector.check("x"), FaultInjector::Outcome::kNone);
  EXPECT_EQ(injector.fired("x"), 1u);  // the stall still counts as a fire
  EXPECT_NO_THROW(injector.maybe_throw("x"));
}

TEST(FaultInjector, MaybeThrowRaisesTypedErrorForErrorAndCorruption) {
  FaultInjector error_injector(FaultPlan::parse("x:nth=1:max=1"));
  EXPECT_THROW(error_injector.maybe_throw("x"), FaultInjectedError);

  FaultInjector corrupt_injector(
      FaultPlan::parse("x:nth=1:max=1:kind=corrupt"));
  // Payload-free call sites must treat corruption as failure.
  EXPECT_THROW(corrupt_injector.maybe_throw("x"), FaultInjectedError);
}

TEST(FaultInjector, CorruptionOutcomeIsReportedToPayloadCallers) {
  FaultInjector injector(FaultPlan::parse("x:nth=2:kind=corrupt"));
  EXPECT_EQ(injector.check("x"), FaultInjector::Outcome::kNone);
  EXPECT_EQ(injector.check("x"), FaultInjector::Outcome::kCorruption);
}

TEST(FaultInjector, EmitsFaultMetrics) {
  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("x:nth=2;y:nth=1:max=1"),
                         &registry);
  for (int i = 0; i < 4; ++i) injector.check("x");
  injector.check("y");
  EXPECT_EQ(registry.counter_value("fault.injected"), 3);
  EXPECT_EQ(registry.counter_value("fault.injected.x"), 2);
  EXPECT_EQ(registry.counter_value("fault.injected.y"), 1);
}

TEST(FaultInjector, NthFireCountIsExactUnderConcurrency) {
  // The nth trigger is a pure function of the atomic call index, so the
  // total fire count is exact no matter how threads interleave.
  FaultInjector injector(FaultPlan::parse("x:nth=5"));
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kCallsPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&injector] {
      for (std::size_t i = 0; i < kCallsPerThread; ++i) injector.check("x");
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(injector.calls("x"), kThreads * kCallsPerThread);
  EXPECT_EQ(injector.fired("x"), kThreads * kCallsPerThread / 5);
}

TEST(FaultInjector, MultipleSpecsOnOneSiteAllEvaluate) {
  // First matching spec wins per call; a stall spec ahead of an error spec
  // delays some calls and fails others.
  FaultInjector injector(FaultPlan::parse("x:nth=2;x:nth=3"));
  // Call 6 matches both specs; the first one (nth=2) decides the outcome,
  // and the site fires once for it.
  std::size_t errors = 0;
  for (int i = 0; i < 6; ++i) {
    if (injector.check("x") == FaultInjector::Outcome::kError) ++errors;
  }
  // nth=2 fires on 2,4,6; nth=3 fires on 3 (6 is consumed by nth=2 first).
  EXPECT_EQ(errors, 4u);
  EXPECT_EQ(injector.fired("x"), 4u);
}

}  // namespace
}  // namespace dasc
