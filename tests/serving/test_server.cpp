#include "serving/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/dasc_params.hpp"
#include "data/synthetic.hpp"
#include "serving/model_artifact.hpp"

namespace dasc::serving {
namespace {

data::PointSet demo_points() {
  data::MixtureParams mix;
  mix.n = 300;
  mix.dim = 8;
  mix.k = 4;
  mix.cluster_stddev = 0.03;
  Rng rng(11);
  return data::make_gaussian_mixture(mix, rng);
}

FitResult demo_fit(const data::PointSet& points) {
  core::DascParams params;
  params.k = 4;
  params.threads = 1;
  Rng rng(7);
  return fit_model(points, params, rng);
}

TEST(ServerTest, LabelsBitIdenticalAcrossThreadsAndBatchSizes) {
  const data::PointSet points = demo_points();
  const FitResult fit = demo_fit(points);
  const Assigner assigner(fit.model);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{16}}) {
      ServerOptions options;
      options.threads = threads;
      options.max_batch_size = batch;
      Server server(assigner, options);
      const std::vector<int> served = server.assign_all(points);
      EXPECT_EQ(served, fit.offline.labels)
          << "threads=" << threads << " batch=" << batch;
    }
  }
}

TEST(ServerTest, LingerStillServesEveryRequest) {
  const data::PointSet points = demo_points();
  const FitResult fit = demo_fit(points);
  const Assigner assigner(fit.model);

  ServerOptions options;
  options.threads = 2;
  options.max_batch_size = 8;
  options.max_linger = std::chrono::microseconds(500);
  Server server(assigner, options);
  const std::vector<int> served = server.assign_all(points);
  EXPECT_EQ(served, fit.offline.labels);
}

TEST(ServerTest, CountersAreDeterministicAcrossConfigurations) {
  const data::PointSet points = demo_points();
  const FitResult fit = demo_fit(points);
  const Assigner assigner(fit.model);

  auto run = [&](std::size_t threads, std::size_t batch) {
    MetricsRegistry registry;
    ServerOptions options;
    options.threads = threads;
    options.max_batch_size = batch;
    options.metrics = &registry;
    {
      Server server(assigner, options);
      server.assign_all(points);
      server.shutdown();
    }
    return registry.counters_snapshot();
  };

  const std::map<std::string, std::int64_t> base = run(1, 1);
  EXPECT_EQ(base.at("serving.requests"),
            static_cast<std::int64_t>(points.size()));
  // Training points all hit the exact-landmark fast path.
  EXPECT_EQ(base.at("serving.exact_hits"),
            static_cast<std::int64_t>(points.size()));
  EXPECT_EQ(run(4, 16), base);
  EXPECT_EQ(run(2, 7), base);
}

TEST(ServerTest, MetricsGaugesAndTimersPopulated) {
  const data::PointSet points = demo_points();
  const FitResult fit = demo_fit(points);
  const Assigner assigner(fit.model);

  MetricsRegistry registry;
  ServerOptions options;
  options.threads = 2;
  options.max_batch_size = 16;
  options.metrics = &registry;
  {
    Server server(assigner, options);
    server.assign_all(points);
    server.shutdown();
  }
  EXPECT_GT(registry.timer_count("serving.assign_batch"), 0);
  EXPECT_EQ(registry.timer_count("serving.request_latency"),
            static_cast<std::int64_t>(points.size()));
  EXPECT_GE(registry.gauge_value("serving.peak_batch_size"), 1);
  EXPECT_LE(registry.gauge_value("serving.peak_batch_size"), 16);
  EXPECT_GE(registry.gauge_value("serving.peak_queue_depth"), 1);
  EXPECT_GE(registry.gauge_value("serving.batches"), 1);
}

TEST(ServerTest, ShutdownDrainsPendingRequests) {
  const data::PointSet points = demo_points();
  const FitResult fit = demo_fit(points);
  const Assigner assigner(fit.model);

  ServerOptions options;
  options.threads = 1;
  options.max_batch_size = 4;
  Server server(assigner, options);
  std::vector<std::future<int>> futures;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto point = points.point(i);
    futures.push_back(
        server.submit(std::vector<double>(point.begin(), point.end())));
  }
  server.shutdown();  // must serve everything already queued
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), fit.offline.labels[i]);
  }
}

TEST(ServerTest, SubmitAfterShutdownThrows) {
  const data::PointSet points = demo_points();
  const FitResult fit = demo_fit(points);
  const Assigner assigner(fit.model);
  Server server(assigner);
  server.shutdown();
  EXPECT_THROW(server.submit(std::vector<double>(8, 0.5)), InvalidArgument);
}

TEST(ServerTest, RejectsWrongDimensionality) {
  const data::PointSet points = demo_points();
  const FitResult fit = demo_fit(points);
  const Assigner assigner(fit.model);
  Server server(assigner);
  EXPECT_THROW(server.submit(std::vector<double>(3, 0.5)), InvalidArgument);
}

}  // namespace
}  // namespace dasc::serving
