#include "serving/assigner.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/dasc_clusterer.hpp"
#include "core/dasc_params.hpp"
#include "data/synthetic.hpp"
#include "serving/model_artifact.hpp"

namespace dasc::serving {
namespace {

data::PointSet demo_points(std::size_t n = 400) {
  data::MixtureParams mix;
  mix.n = n;
  mix.dim = 8;
  mix.k = 4;
  mix.cluster_stddev = 0.03;
  Rng rng(11);
  return data::make_gaussian_mixture(mix, rng);
}

core::DascParams demo_params() {
  core::DascParams params;
  params.k = 4;
  params.threads = 1;
  return params;
}

TEST(AssignerTest, TrainingPointsReproduceOfflineLabels) {
  const data::PointSet points = demo_points();
  Rng rng(7);
  const FitResult fit = fit_model(points, demo_params(), rng);
  const Assigner assigner(fit.model);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(assigner.assign(points.point(i)), fit.offline.labels[i])
        << "training point " << i;
  }
}

TEST(AssignerTest, TrainingParityHoldsUnderBucketCap) {
  // The balancing cap splits buckets that share a signature, which is the
  // hard case for routing: an exact-signature route maps to several buckets.
  const data::PointSet points = demo_points();
  core::DascParams params = demo_params();
  params.max_bucket_points = 48;
  Rng rng(7);
  const FitResult fit = fit_model(points, params, rng);
  const Assigner assigner(fit.model);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(assigner.assign(points.point(i)), fit.offline.labels[i])
        << "training point " << i;
  }
}

TEST(AssignerTest, BatchMatchesSingleAcrossThreadCounts) {
  const data::PointSet points = demo_points(200);
  Rng rng(7);
  const FitResult fit = fit_model(points, demo_params(), rng);
  const Assigner assigner(fit.model);

  std::vector<int> single(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    single[i] = assigner.assign(points.point(i));
  }
  EXPECT_EQ(assigner.assign_batch(points, 1), single);
  EXPECT_EQ(assigner.assign_batch(points, 4), single);
}

TEST(AssignerTest, NearbyQueriesFollowTheirCluster) {
  const data::PointSet points = demo_points();
  Rng rng(7);
  const FitResult fit = fit_model(points, demo_params(), rng);
  const Assigner assigner(fit.model);

  // Out-of-sample queries: tiny perturbations of training points should
  // overwhelmingly keep the source point's label (well-separated mixture).
  std::size_t agree = 0;
  const std::size_t probes = 100;
  for (std::size_t i = 0; i < probes; ++i) {
    const std::size_t src = i * points.size() / probes;
    std::vector<double> query(points.point(src).begin(),
                              points.point(src).end());
    for (double& v : query) v += 1e-7;
    if (assigner.assign(query) == fit.offline.labels[src]) ++agree;
  }
  EXPECT_GE(agree, probes * 9 / 10);
}

TEST(AssignerTest, AssignedLabelsAreInRange) {
  const data::PointSet points = demo_points();
  Rng rng(7);
  const FitResult fit = fit_model(points, demo_params(), rng);
  const Assigner assigner(fit.model);
  Rng query_rng(99);
  const data::PointSet queries = data::make_uniform(50, 8, query_rng);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const int label = assigner.assign(queries.point(i));
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(fit.model.num_clusters));
  }
}

TEST(AssignerTest, DimensionMismatchThrows) {
  const data::PointSet points = demo_points(100);
  Rng rng(7);
  const FitResult fit = fit_model(points, demo_params(), rng);
  const Assigner assigner(fit.model);
  const std::vector<double> bad(3, 0.0);
  EXPECT_THROW(assigner.assign(bad), InvalidArgument);
}

// Hand-built one-dimensional artifact exercising every routing path.
// Signature bits (Eq. 5): bit0 = (x <= 0.25), bit1 = (x <= 0.5),
// bit2 = (x <= 0.75). The only fitted route is signature 0b111 (x <= 0.25).
ModelArtifact tiny_artifact() {
  ModelArtifact model;
  model.dim = 1;
  model.train_points = 1;
  model.num_clusters = 1;
  model.requested_k = 1;
  model.signature_bits = 3;
  model.merge_bits = 2;
  model.sigma = 1.0;
  model.hash_dims = {0, 0, 0};
  model.hash_thresholds = {0.25, 0.5, 0.75};
  model.routes = {{0b111, 0}};

  BucketModel bucket;
  bucket.signature = lsh::Signature{0b111};
  bucket.label_offset = 0;
  bucket.member_count = 1;
  bucket.landmarks = linalg::DenseMatrix(1, 1);
  bucket.landmarks(0, 0) = 0.1;
  bucket.landmark_labels = {0};
  bucket.degrees = {0.0};
  bucket.k_eff = 0;  // trivial bucket: one member, one label
  model.buckets.push_back(std::move(bucket));
  return model;
}

TEST(AssignerTest, ExactRouteAndExactLandmark) {
  const Assigner assigner(tiny_artifact());
  const std::vector<double> query = {0.1};  // signature 0b111, stored point
  const AssignOutcome outcome = assigner.assign_detailed(query);
  EXPECT_EQ(outcome.route, RoutePath::kExact);
  EXPECT_EQ(outcome.path, AssignPath::kExactLandmark);
  EXPECT_EQ(outcome.label, 0);
}

TEST(AssignerTest, OneBitHammingFallback) {
  const Assigner assigner(tiny_artifact());
  // x = 0.4: signature 0b110, one bit away from the fitted 0b111 (Eq. 6).
  const std::vector<double> query = {0.4};
  const AssignOutcome outcome = assigner.assign_detailed(query);
  EXPECT_EQ(outcome.route, RoutePath::kHamming);
  EXPECT_EQ(outcome.path, AssignPath::kNearestLandmark);
  EXPECT_EQ(outcome.label, 0);
}

TEST(AssignerTest, ScanFallbackWhenNoRouteIsNear) {
  const Assigner assigner(tiny_artifact());
  // x = 0.9: signature 0b000, three bits from the only route; no single
  // bit flip reaches it, so routing degrades to the signature scan.
  const std::vector<double> query = {0.9};
  const AssignOutcome outcome = assigner.assign_detailed(query);
  EXPECT_EQ(outcome.route, RoutePath::kScan);
  EXPECT_EQ(outcome.label, 0);
}

// --- Gram backend routing -------------------------------------------------

FitResult backend_fit(core::GramBackendPolicy backend,
                      const data::PointSet& points) {
  core::DascParams params = demo_params();
  params.gram_backend = backend;
  Rng rng(7);
  return fit_model(points, params, rng);
}

TEST(AssignerBackends, FitSaveReloadServeParityPerBackend) {
  // The acceptance loop of the backend refactor: for every backend,
  // fit -> save -> reload -> serve must reproduce the offline labels on
  // every training point (exact-landmark short circuit, backend
  // independent).
  const data::PointSet points = demo_points();
  const core::GramBackendPolicy policies[] = {
      core::GramBackendPolicy::kDense, core::GramBackendPolicy::kNystrom,
      core::GramBackendPolicy::kRbfBinning};
  for (const core::GramBackendPolicy policy : policies) {
    const FitResult fit = backend_fit(policy, points);
    const std::string path = testing::TempDir() + "dasc_backend_serve.bin";
    save_model(fit.model, path);
    const Assigner assigner(load_model(path));
    for (std::size_t i = 0; i < points.size(); ++i) {
      ASSERT_EQ(assigner.assign(points.point(i)), fit.offline.labels[i])
          << "training point " << i << " under backend "
          << static_cast<int>(policy);
    }
  }
}

TEST(AssignerBackends, OutOfSampleQueriesUseTheFactorPath) {
  // Perturbed copies of training points are out of sample (no exact
  // landmark hit); buckets fitted by an approximate backend must embed
  // them through the persisted factor.
  const data::PointSet points = demo_points();
  const FitResult fit =
      backend_fit(core::GramBackendPolicy::kNystrom, points);
  const Assigner assigner(fit.model);

  std::size_t factor_paths = 0;
  std::size_t agree = 0;
  const std::size_t probes = 100;
  for (std::size_t i = 0; i < probes; ++i) {
    const std::size_t src = i * points.size() / probes;
    std::vector<double> query(points.point(src).begin(),
                              points.point(src).end());
    for (double& v : query) v += 1e-7;
    const AssignOutcome outcome = assigner.assign_detailed(query);
    if (outcome.path == AssignPath::kFactor) ++factor_paths;
    if (outcome.label == fit.offline.labels[src]) ++agree;
  }
  EXPECT_GT(factor_paths, 0u);
  EXPECT_GE(agree, probes * 9 / 10);
}

TEST(AssignerBackends, BinningFactorServesNearbyQueries) {
  const data::PointSet points = demo_points();
  const FitResult fit =
      backend_fit(core::GramBackendPolicy::kRbfBinning, points);
  const Assigner assigner(fit.model);
  std::size_t agree = 0;
  const std::size_t probes = 100;
  for (std::size_t i = 0; i < probes; ++i) {
    const std::size_t src = i * points.size() / probes;
    std::vector<double> query(points.point(src).begin(),
                              points.point(src).end());
    for (double& v : query) v += 1e-7;
    if (assigner.assign(query) == fit.offline.labels[src]) ++agree;
  }
  EXPECT_GE(agree, probes * 8 / 10);
}

}  // namespace
}  // namespace dasc::serving
