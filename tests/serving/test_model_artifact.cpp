#include "serving/model_artifact.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/dasc_params.hpp"
#include "data/synthetic.hpp"

namespace dasc::serving {
namespace {

data::PointSet demo_points() {
  data::MixtureParams mix;
  mix.n = 300;
  mix.dim = 8;
  mix.k = 3;
  mix.cluster_stddev = 0.04;
  Rng rng(11);
  return data::make_gaussian_mixture(mix, rng);
}

core::DascParams demo_params() {
  core::DascParams params;
  params.k = 3;
  params.threads = 1;
  return params;
}

FitResult demo_fit() {
  const data::PointSet points = demo_points();
  Rng rng(7);
  return fit_model(points, demo_params(), rng);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "dasc_artifact_" + name;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(ModelArtifactTest, FitPopulatesModel) {
  const FitResult fit = demo_fit();
  const ModelArtifact& model = fit.model;
  EXPECT_EQ(model.dim, 8u);
  EXPECT_EQ(model.train_points, 300u);
  EXPECT_GT(model.sigma, 0.0);
  EXPECT_EQ(model.hash_dims.size(), model.signature_bits);
  EXPECT_EQ(model.hash_thresholds.size(), model.signature_bits);
  EXPECT_FALSE(model.buckets.empty());
  EXPECT_FALSE(model.routes.empty());
  EXPECT_EQ(model.num_clusters,
            static_cast<std::uint64_t>(fit.offline.num_clusters));

  std::uint64_t members = 0;
  for (const BucketModel& bucket : model.buckets) {
    members += bucket.member_count;
    // Full landmarks by default: every member retained.
    EXPECT_EQ(bucket.landmarks.rows(), bucket.member_count);
    EXPECT_EQ(bucket.landmark_labels.size(), bucket.member_count);
    EXPECT_EQ(bucket.degrees.size(), bucket.member_count);
    if (bucket.k_eff > 0) {
      EXPECT_EQ(bucket.eigenvalues.size(), bucket.k_eff);
      EXPECT_EQ(bucket.eigenvectors.rows(), bucket.landmarks.rows());
      EXPECT_EQ(bucket.eigenvectors.cols(), bucket.k_eff);
      EXPECT_EQ(bucket.centroids.rows(), bucket.k_eff);
      EXPECT_EQ(bucket.centroids.cols(), bucket.k_eff);
    }
  }
  EXPECT_EQ(members, model.train_points);
}

TEST(ModelArtifactTest, FitOfflineLabelsMatchDascCluster) {
  const data::PointSet points = demo_points();
  Rng rng_fit(7);
  const FitResult fit = fit_model(points, demo_params(), rng_fit);
  Rng rng_offline(7);
  const core::DascResult offline =
      core::dasc_cluster(points, demo_params(), rng_offline);
  EXPECT_EQ(fit.offline.labels, offline.labels);
  EXPECT_EQ(fit.offline.num_clusters, offline.num_clusters);
}

TEST(ModelArtifactTest, RoundTripPreservesEveryField) {
  const FitResult fit = demo_fit();
  const std::string path = temp_path("roundtrip.bin");
  save_model(fit.model, path);
  const ModelArtifact loaded = load_model(path);

  const ModelArtifact& model = fit.model;
  EXPECT_EQ(loaded.dim, model.dim);
  EXPECT_EQ(loaded.train_points, model.train_points);
  EXPECT_EQ(loaded.num_clusters, model.num_clusters);
  EXPECT_EQ(loaded.requested_k, model.requested_k);
  EXPECT_EQ(loaded.signature_bits, model.signature_bits);
  EXPECT_EQ(loaded.merge_bits, model.merge_bits);
  EXPECT_EQ(loaded.sigma, model.sigma);
  EXPECT_EQ(loaded.hash_dims, model.hash_dims);
  EXPECT_EQ(loaded.hash_thresholds, model.hash_thresholds);
  EXPECT_EQ(loaded.routes, model.routes);
  ASSERT_EQ(loaded.buckets.size(), model.buckets.size());
  for (std::size_t b = 0; b < model.buckets.size(); ++b) {
    const BucketModel& want = model.buckets[b];
    const BucketModel& got = loaded.buckets[b];
    EXPECT_EQ(got.signature, want.signature);
    EXPECT_EQ(got.label_offset, want.label_offset);
    EXPECT_EQ(got.member_count, want.member_count);
    EXPECT_EQ(got.landmark_labels, want.landmark_labels);
    EXPECT_EQ(got.degrees, want.degrees);
    EXPECT_EQ(got.k_eff, want.k_eff);
    EXPECT_EQ(got.eigenvalues, want.eigenvalues);
    ASSERT_EQ(got.landmarks.rows(), want.landmarks.rows());
    ASSERT_EQ(got.landmarks.cols(), want.landmarks.cols());
    for (std::size_t i = 0; i < want.landmarks.rows(); ++i) {
      for (std::size_t j = 0; j < want.landmarks.cols(); ++j) {
        EXPECT_EQ(got.landmarks(i, j), want.landmarks(i, j));
      }
    }
    ASSERT_EQ(got.eigenvectors.rows(), want.eigenvectors.rows());
    ASSERT_EQ(got.eigenvectors.cols(), want.eigenvectors.cols());
    for (std::size_t i = 0; i < want.eigenvectors.rows(); ++i) {
      for (std::size_t j = 0; j < want.eigenvectors.cols(); ++j) {
        EXPECT_EQ(got.eigenvectors(i, j), want.eigenvectors(i, j));
      }
    }
    ASSERT_EQ(got.centroids.rows(), want.centroids.rows());
    for (std::size_t i = 0; i < want.centroids.rows(); ++i) {
      for (std::size_t j = 0; j < want.centroids.cols(); ++j) {
        EXPECT_EQ(got.centroids(i, j), want.centroids(i, j));
      }
    }
  }
}

TEST(ModelArtifactTest, SaveLoadSaveIsByteIdentical) {
  const FitResult fit = demo_fit();
  const std::string first = temp_path("first.bin");
  const std::string second = temp_path("second.bin");
  save_model(fit.model, first);
  save_model(load_model(first), second);
  EXPECT_EQ(read_bytes(first), read_bytes(second));
}

TEST(ModelArtifactTest, MissingFileThrowsIoError) {
  EXPECT_THROW(load_model(temp_path("does_not_exist.bin")), IoError);
}

TEST(ModelArtifactTest, TruncatedFileThrowsIoError) {
  const FitResult fit = demo_fit();
  const std::string path = temp_path("full.bin");
  save_model(fit.model, path);
  const std::string bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), 64u);

  const std::string truncated = temp_path("truncated.bin");
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{9}, std::size_t{40}, bytes.size() / 2,
        bytes.size() - 1}) {
    write_bytes(truncated, bytes.substr(0, keep));
    EXPECT_THROW(load_model(truncated), IoError) << "keep=" << keep;
  }
}

TEST(ModelArtifactTest, CorruptedPayloadFailsCrc) {
  const FitResult fit = demo_fit();
  const std::string path = temp_path("crc.bin");
  save_model(fit.model, path);
  std::string bytes = read_bytes(path);
  // Flip one bit in the middle of a section payload; the CRC must notice.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  write_bytes(path, bytes);
  try {
    load_model(path);
    FAIL() << "corrupted artifact loaded";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << e.what();
  }
}

TEST(ModelArtifactTest, FutureVersionThrowsIoError) {
  const FitResult fit = demo_fit();
  const std::string path = temp_path("version.bin");
  save_model(fit.model, path);
  std::string bytes = read_bytes(path);
  // Version is the little-endian u32 straight after the 8-byte magic.
  bytes[8] = static_cast<char>(kFormatVersion + 1);
  write_bytes(path, bytes);
  try {
    load_model(path);
    FAIL() << "future-versioned artifact loaded";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(ModelArtifactTest, BadMagicThrowsIoError) {
  const std::string path = temp_path("magic.bin");
  write_bytes(path, "NOTADASCMODELFILE_________________");
  EXPECT_THROW(load_model(path), IoError);
}

TEST(ModelArtifactTest, FitRejectsNonProjectionFamily) {
  const data::PointSet points = demo_points();
  core::DascParams params = demo_params();
  params.family = core::HashFamily::kSimHash;
  Rng rng(7);
  EXPECT_THROW(fit_model(points, params, rng), InvalidArgument);
}

FitResult backend_fit(core::GramBackendPolicy backend) {
  const data::PointSet points = demo_points();
  core::DascParams params = demo_params();
  params.gram_backend = backend;
  Rng rng(7);
  return fit_model(points, params, rng);
}

bool any_factored_bucket(const ModelArtifact& model) {
  for (const BucketModel& bucket : model.buckets) {
    if (bucket.nystrom.map.rows() > 0 || bucket.binning.map.rows() > 0) {
      return true;
    }
  }
  return false;
}

TEST(ModelArtifactBackends, RoundTripIsByteIdenticalPerBackend) {
  const core::GramBackendPolicy policies[] = {
      core::GramBackendPolicy::kDense, core::GramBackendPolicy::kNystrom,
      core::GramBackendPolicy::kRbfBinning};
  for (const core::GramBackendPolicy policy : policies) {
    const FitResult fit = backend_fit(policy);
    const std::string first = temp_path("backend_first.bin");
    const std::string second = temp_path("backend_second.bin");
    save_model(fit.model, first);
    const ModelArtifact loaded = load_model(first);
    save_model(loaded, second);
    EXPECT_EQ(read_bytes(first), read_bytes(second));
    ASSERT_EQ(loaded.buckets.size(), fit.model.buckets.size());
    for (std::size_t b = 0; b < loaded.buckets.size(); ++b) {
      EXPECT_EQ(loaded.buckets[b].backend, fit.model.buckets[b].backend);
    }
  }
  EXPECT_TRUE(
      any_factored_bucket(backend_fit(core::GramBackendPolicy::kNystrom)
                              .model));
}

TEST(ModelArtifactBackends, OldVersionArtifactLoadsWithDenseImplied) {
  // A dense-only model written as format version 1 (four sections, no
  // factor section) must still load, with every bucket's backend implied
  // dense.
  const FitResult fit = backend_fit(core::GramBackendPolicy::kDense);
  const std::string path = temp_path("v1.bin");
  save_model(fit.model, path, /*format_version=*/1);
  const ModelArtifact loaded = load_model(path);
  ASSERT_EQ(loaded.buckets.size(), fit.model.buckets.size());
  for (const BucketModel& bucket : loaded.buckets) {
    EXPECT_EQ(bucket.backend, core::GramBackend::kDense);
    EXPECT_EQ(bucket.nystrom.map.rows(), 0u);
    EXPECT_EQ(bucket.binning.map.rows(), 0u);
  }
  EXPECT_EQ(loaded.routes, fit.model.routes);
}

TEST(ModelArtifactBackends, Version1CannotEncodeFactoredBackends) {
  // Exporting a factored model in the old format would silently drop the
  // serving factors; the writer must refuse instead.
  const FitResult fit = backend_fit(core::GramBackendPolicy::kNystrom);
  ASSERT_TRUE(any_factored_bucket(fit.model));
  EXPECT_THROW(save_model(fit.model, temp_path("v1_factored.bin"),
                          /*format_version=*/1),
               IoError);
}

TEST(ModelArtifactBackends, TruncatedFactorSectionThrowsIoError) {
  // The factor section is the last section of a v2 artifact, so trimming
  // tail bytes lands inside it.
  const FitResult fit = backend_fit(core::GramBackendPolicy::kNystrom);
  const std::string path = temp_path("factor_full.bin");
  save_model(fit.model, path);
  const std::string bytes = read_bytes(path);
  const std::string truncated = temp_path("factor_truncated.bin");
  for (const std::size_t drop :
       {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
    ASSERT_GT(bytes.size(), drop);
    write_bytes(truncated, bytes.substr(0, bytes.size() - drop));
    EXPECT_THROW(load_model(truncated), IoError) << "drop=" << drop;
  }
}

TEST(ModelArtifactBackends, CorruptedFactorSectionFailsCrc) {
  const FitResult fit = backend_fit(core::GramBackendPolicy::kRbfBinning);
  ASSERT_TRUE(any_factored_bucket(fit.model));
  const std::string path = temp_path("factor_crc.bin");
  save_model(fit.model, path);
  std::string bytes = read_bytes(path);
  // Flip a bit near the tail: inside the factor section's payload.
  const std::size_t at = bytes.size() - 32;
  bytes[at] = static_cast<char>(bytes[at] ^ 0x10);
  write_bytes(path, bytes);
  try {
    load_model(path);
    FAIL() << "corrupted factor section loaded";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << e.what();
  }
}

TEST(ModelArtifactTest, LandmarkSubsamplingCapsArtifact) {
  const data::PointSet points = demo_points();
  Rng rng(7);
  FitOptions options;
  options.max_landmarks = 16;
  const FitResult fit = fit_model(points, demo_params(), rng, options);
  for (const BucketModel& bucket : fit.model.buckets) {
    EXPECT_LE(bucket.landmarks.rows(), 16u);
    EXPECT_LE(bucket.landmarks.rows(), bucket.member_count);
  }
}

}  // namespace
}  // namespace dasc::serving
