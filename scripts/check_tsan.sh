#!/usr/bin/env bash
# Build and run the tier-1 test suite under ThreadSanitizer.
# Usage: scripts/check_tsan.sh [extra ctest args...]
#
# The multi-process runtime forks every worker before the job spawns any
# threads (WorkerSupervisor's fork-safety-by-construction contract), which
# is exactly the discipline TSan's fork checking enforces — this suite is
# the gate that keeps it honest.
set -euo pipefail
cd "$(dirname "$0")/.."

# Route compiles through ccache when available (CI caches CCACHE_DIR).
if command -v ccache >/dev/null 2>&1; then
  export CMAKE_CXX_COMPILER_LAUNCHER=ccache
fi

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan "$@"

# The stream suite runs concurrent sender/receiver threads over one
# transport pair (flow-control credit, mid-stream death), and the
# connection-pool suite mixes leases with owner kills/restarts across
# threads; hammer both so a racy ack, shutdown, or give-back path cannot
# hide behind a lucky interleaving.
ctest --preset tsan --tests-regex '^(TransportFuzz|WireFuzz|Stream|ConnPool)\.' \
  --repeat until-fail:3
