#!/usr/bin/env python3
"""Validate metrics JSON emitted by dasc_tool --metrics-out and the
BENCH_<name>.json bench artifacts (schema documented in DESIGN.md section 7
and src/common/metrics.hpp).

Schema:
  {
    "counters":  {name: int, ...},
    "timers_ms": {name: {"count": int, "total_ms": float}, ...},
    "gauges":    {name: int, ...}
  }

Usage:
  check_bench_json.py FILE [FILE...]
      [--require-timer NAME]...       timer NAME present with count > 0
      [--require-counter NAME]...     counter NAME present with value > 0
      [--require-gauge NAME]...       gauge NAME present
      [--require-gauge-le NAME MAX]   gauge NAME present and <= MAX
      [--require-gauge-ge NAME MIN]   gauge NAME present and >= MIN
      [--baseline FILE]               committed reference BENCH json
      [--max-regress PCT]             with --baseline: fail when any timer
                                      shared with the baseline is more than
                                      PCT percent slower per iteration
                                      (default 15)

Per-iteration time for the regression gate is timers_ms[name].total_ms
divided by the matching "<name>.iterations" counter when present (the
gbench reporter records both), else by timers_ms[name].count.

Exits nonzero (with a message per failure) when any file is invalid or a
requirement is unmet. Requirements are checked against every FILE given.
Stdlib only — runs on a bare CI image.
"""

import argparse
import json
import sys


def fail(errors, message):
    errors.append(message)


def check_schema(path, data, errors):
    if not isinstance(data, dict):
        fail(errors, f"{path}: top level is not an object")
        return
    expected = {"counters", "timers_ms", "gauges"}
    if set(data.keys()) != expected:
        fail(errors,
             f"{path}: keys {sorted(data.keys())} != {sorted(expected)}")
        return
    for section in ("counters", "gauges"):
        values = data[section]
        if not isinstance(values, dict):
            fail(errors, f"{path}: {section} is not an object")
            continue
        for name, value in values.items():
            if not isinstance(value, int) or isinstance(value, bool):
                fail(errors,
                     f"{path}: {section}[{name!r}] = {value!r} is not an int")
    timers = data["timers_ms"]
    if not isinstance(timers, dict):
        fail(errors, f"{path}: timers_ms is not an object")
        return
    for name, snap in timers.items():
        if (not isinstance(snap, dict)
                or set(snap.keys()) != {"count", "total_ms"}):
            fail(errors, f"{path}: timers_ms[{name!r}] = {snap!r} is not "
                         "{{count, total_ms}}")
            continue
        if not isinstance(snap["count"], int) or isinstance(
                snap["count"], bool):
            fail(errors, f"{path}: timers_ms[{name!r}].count is not an int")
        if not isinstance(snap["total_ms"], (int, float)) or isinstance(
                snap["total_ms"], bool):
            fail(errors,
                 f"{path}: timers_ms[{name!r}].total_ms is not a number")


def check_requirements(path, data, args, errors):
    timers = data.get("timers_ms", {})
    counters = data.get("counters", {})
    gauges = data.get("gauges", {})
    for name in args.require_timer:
        snap = timers.get(name)
        if not isinstance(snap, dict):
            fail(errors, f"{path}: missing required timer {name!r}")
        elif snap.get("count", 0) <= 0:
            fail(errors, f"{path}: timer {name!r} has count "
                         f"{snap.get('count', 0)}")
    for name in args.require_counter:
        value = counters.get(name)
        if value is None:
            fail(errors, f"{path}: missing required counter {name!r}")
        elif value <= 0:
            fail(errors, f"{path}: counter {name!r} = {value}, expected > 0")
    for name in args.require_gauge:
        if name not in gauges:
            fail(errors, f"{path}: missing required gauge {name!r}")
    for name, limit in args.require_gauge_le:
        value = gauges.get(name)
        if value is None:
            fail(errors, f"{path}: missing required gauge {name!r}")
        elif value > int(limit):
            fail(errors, f"{path}: gauge {name!r} = {value} > {limit}")
    for name, floor in args.require_gauge_ge:
        value = gauges.get(name)
        if value is None:
            fail(errors, f"{path}: missing required gauge {name!r}")
        elif value < int(floor):
            fail(errors, f"{path}: gauge {name!r} = {value} < {floor}")


def per_iteration_ms(data, name):
    """Timer total_ms normalized by the gbench iteration counter.

    Defensive against malformed inputs (a --baseline file is read from
    disk without a schema pass having aborted the run): a timer entry
    that is not an object, or lacks a numeric total_ms, yields None and
    is skipped by the regression gate instead of raising KeyError.
    """
    snap = data.get("timers_ms", {}).get(name)
    if not isinstance(snap, dict):
        return None
    total_ms = snap.get("total_ms")
    if not isinstance(total_ms, (int, float)) or isinstance(total_ms, bool):
        return None
    iterations = data.get("counters", {}).get(f"{name}.iterations")
    divisor = iterations if iterations else snap.get("count", 0)
    if not isinstance(divisor, int) or divisor <= 0:
        return None
    return total_ms / divisor


def check_regression(path, data, baseline, max_regress, errors):
    compared = 0
    for name in sorted(baseline.get("timers_ms", {})):
        base_ms = per_iteration_ms(baseline, name)
        cur_ms = per_iteration_ms(data, name)
        if base_ms is None or cur_ms is None or base_ms <= 0:
            continue
        compared += 1
        regress = 100.0 * (cur_ms / base_ms - 1.0)
        if regress > max_regress:
            fail(errors,
                 f"{path}: timer {name!r} regressed {regress:.1f}% "
                 f"({cur_ms:.6g} ms/iter vs baseline {base_ms:.6g}; "
                 f"limit {max_regress}%)")
    if compared == 0:
        fail(errors, f"{path}: no timers overlap the baseline")
    else:
        print(f"{path}: {compared} timers within {max_regress}% of baseline")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", metavar="FILE")
    parser.add_argument("--require-timer", action="append", default=[],
                        metavar="NAME")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME")
    parser.add_argument("--require-gauge", action="append", default=[],
                        metavar="NAME")
    parser.add_argument("--require-gauge-le", action="append", default=[],
                        nargs=2, metavar=("NAME", "MAX"))
    parser.add_argument("--require-gauge-ge", action="append", default=[],
                        nargs=2, metavar=("NAME", "MIN"))
    parser.add_argument("--baseline", metavar="FILE")
    parser.add_argument("--max-regress", type=float, default=15.0,
                        metavar="PCT")
    args = parser.parse_args(argv)

    errors = []
    baseline = None
    if args.baseline is not None:
        try:
            with open(args.baseline, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            fail(errors, f"{args.baseline}: {exc}")
        if baseline is not None:
            # The baseline must satisfy the same schema as the files under
            # test: a malformed committed baseline is a failure, not a
            # traceback (and not a silently-passing regression gate).
            baseline_errors = []
            check_schema(args.baseline, baseline, baseline_errors)
            if baseline_errors:
                errors.extend(baseline_errors)
                baseline = None
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            fail(errors, f"{path}: {exc}")
            continue
        check_schema(path, data, errors)
        check_requirements(path, data, args, errors)
        if baseline is not None:
            check_regression(path, data, baseline, args.max_regress, errors)
        if not errors:
            counts = (len(data.get("counters", {})),
                      len(data.get("timers_ms", {})),
                      len(data.get("gauges", {})))
            print(f"{path}: OK ({counts[0]} counters, {counts[1]} timers, "
                  f"{counts[2]} gauges)")

    for message in errors:
        print(f"error: {message}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
