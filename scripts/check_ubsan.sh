#!/usr/bin/env bash
# Build the UBSan-only preset (optimized, so the compiler actually emits
# the vectorized code paths ASan's instrumentation tends to suppress) and
# run the linalg + clustering test groups — the suites that cover the SIMD
# dispatch layer and its consumers.
# Usage: scripts/check_ubsan.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

# Route compiles through ccache when available (CI caches CCACHE_DIR).
if command -v ccache >/dev/null 2>&1; then
  export CMAKE_CXX_COMPILER_LAUNCHER=ccache
fi

cmake --preset ubsan
cmake --build --preset ubsan -j "$(nproc)" --target test_linalg test_clustering
ctest --preset ubsan --tests-regex '^(SimdDifferential|VectorOps|DenseMatrix|SparseCsr|SymmetricEigen|JacobiEigen|Lanczos|Svd|GaussianKernel|GaussianGram|SuggestBandwidth|KMeans|Spectral|KernelPca|Hungarian|Clustering)' "$@"
