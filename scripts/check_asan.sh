#!/usr/bin/env bash
# Build and run the tier-1 test suite under AddressSanitizer + UBSan.
# Usage: scripts/check_asan.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

# Route compiles through ccache when available (CI caches CCACHE_DIR).
if command -v ccache >/dev/null 2>&1; then
  export CMAKE_CXX_COMPILER_LAUNCHER=ccache
fi

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan "$@"

# Deflake gate: the SIMD differential suite asserts bitwise invariants that
# must hold on every run, so hammer it until-fail under the sanitizers.
ctest --preset asan --tests-regex 'SimdDifferential' --repeat until-fail:3

# The transport fuzz/property, stream, and connection-pool suites drive
# the framing layer with malformed, truncated, and bit-flipped input and
# the data-plane pool through kill/restart/invalidation churn; every
# rejection and teardown path must be allocation-clean under ASan, so
# hammer them too.
ctest --preset asan --tests-regex '^(TransportFuzz|WireFuzz|Stream|ConnPool)\.' \
  --repeat until-fail:3

