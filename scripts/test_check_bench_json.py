#!/usr/bin/env python3
"""Self-test for check_bench_json.py, run by CI's format-check job.

Exercises the validator as a subprocess the way CI does: well-formed
files must pass, every failure mode must exit 1 with an 'error:' line on
stderr, and no input — in particular a malformed --baseline whose timer
entries are missing values — may ever produce a Python traceback.

Stdlib only — runs on a bare CI image.
"""

import json
import os
import subprocess
import sys
import tempfile

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_bench_json.py")

GOOD = {
    "counters": {"pipeline.blocks_spilled": 3, "bench.iterations": 10},
    "timers_ms": {"spill.page_io": {"count": 56, "total_ms": 4.5},
                  "bench": {"count": 10, "total_ms": 120.0}},
    "gauges": {"spill.bytes_written_under_tiny_budget": 6750448},
}

failures = []


def run(args):
    return subprocess.run([sys.executable, CHECKER] + args,
                          capture_output=True, text=True)


def write(tmpdir, name, payload):
    path = os.path.join(tmpdir, name)
    with open(path, "w", encoding="utf-8") as handle:
        if isinstance(payload, str):
            handle.write(payload)
        else:
            json.dump(payload, handle)
    return path


def expect(label, result, exit_code, stderr_has=None):
    if result.returncode != exit_code:
        failures.append(f"{label}: exit {result.returncode}, "
                        f"expected {exit_code}\n{result.stderr}")
        return
    if "Traceback" in result.stderr:
        failures.append(f"{label}: crashed with a traceback instead of a "
                        f"clean failure\n{result.stderr}")
        return
    if stderr_has is not None and stderr_has not in result.stderr:
        failures.append(f"{label}: stderr missing {stderr_has!r}\n"
                        f"{result.stderr}")
        return
    print(f"ok: {label}")


def main():
    with tempfile.TemporaryDirectory() as tmpdir:
        good = write(tmpdir, "good.json", GOOD)

        expect("valid file passes", run([good]), 0)
        expect("requirements against a valid file pass",
               run([good,
                    "--require-timer", "spill.page_io",
                    "--require-counter", "pipeline.blocks_spilled",
                    "--require-gauge-ge",
                    "spill.bytes_written_under_tiny_budget", "1"]), 0)
        expect("unmet gauge floor fails",
               run([good, "--require-gauge-ge",
                    "spill.bytes_written_under_tiny_budget",
                    "99999999999"]), 1, "error:")
        expect("missing timer fails",
               run([good, "--require-timer", "no.such.timer"]), 1,
               "missing required timer")
        expect("unreadable file fails",
               run([os.path.join(tmpdir, "absent.json")]), 1, "error:")
        expect("non-JSON file fails",
               run([write(tmpdir, "garbage.json", "not json {")]), 1,
               "error:")

        # The historical crash: a baseline whose timer entry is missing
        # total_ms raised KeyError in per_iteration_ms. It must now be a
        # clean schema failure.
        broken_baseline = write(
            tmpdir, "broken_baseline.json",
            {"counters": {}, "gauges": {},
             "timers_ms": {"bench": {"count": 10}}})
        expect("baseline with missing timer value fails cleanly",
               run([good, "--baseline", broken_baseline]), 1, "error:")
        expect("absent baseline file fails cleanly",
               run([good, "--baseline",
                    os.path.join(tmpdir, "no_baseline.json")]), 1, "error:")

        # Regression gate still works on a well-formed baseline: a 3x
        # slowdown against a 40ms/iter baseline trips the default 15%.
        fast_baseline = dict(GOOD)
        fast_baseline["timers_ms"] = {"bench": {"count": 10,
                                                "total_ms": 40.0}}
        expect("regression against a valid baseline fails",
               run([good, "--baseline",
                    write(tmpdir, "fast.json", fast_baseline)]), 1,
               "regressed")
        expect("no regression against itself",
               run([good, "--baseline", good]), 0)

    if failures:
        for message in failures:
            print(f"FAIL: {message}", file=sys.stderr)
        return 1
    print("all check_bench_json.py self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
